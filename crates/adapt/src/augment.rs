//! Label-preserving augmentations for MEMO's marginal-entropy objective.
//!
//! MEMO augments each test input with random transforms (the paper's
//! examples: rotation, posterization) and minimizes the entropy of the
//! *averaged* prediction. In our feature-vector domain (DESIGN.md S4) the
//! analogous transforms are small jitter, scaling, feature dropout and tiny
//! cyclic shifts — mild enough that a well-trained classifier's prediction
//! should be invariant to them.

use nazar_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One augmentation family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Augmentation {
    /// Additive Gaussian jitter (σ = 0.1).
    Jitter,
    /// Global scaling by `U[0.85, 1.15]`.
    Scale,
    /// Random zeroing of 10% of features.
    Dropout,
    /// Cyclic shift by one position.
    Shift,
}

impl Augmentation {
    /// The full set of augmentation families.
    pub const ALL: [Augmentation; 4] = [
        Augmentation::Jitter,
        Augmentation::Scale,
        Augmentation::Dropout,
        Augmentation::Shift,
    ];

    /// Applies the augmentation to every row of `x`.
    pub fn apply<R: Rng + ?Sized>(self, x: &Tensor, rng: &mut R) -> Tensor {
        let (n, d) = (x.nrows().expect("matrix"), x.ncols().unwrap());
        let mut out = Vec::with_capacity(n * d);
        match self {
            Augmentation::Jitter => {
                for &v in x.data() {
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0f32..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                    out.push(v + 0.1 * z);
                }
            }
            Augmentation::Scale => {
                for i in 0..n {
                    let c = rng.gen_range(0.85f32..1.15);
                    out.extend(x.row(i).unwrap().iter().map(|&v| v * c));
                }
            }
            Augmentation::Dropout => {
                for &v in x.data() {
                    out.push(if rng.gen_range(0.0f32..1.0) < 0.1 {
                        0.0
                    } else {
                        v
                    });
                }
            }
            Augmentation::Shift => {
                for i in 0..n {
                    let row = x.row(i).unwrap();
                    for j in 0..d {
                        out.push(row[(j + 1) % d]);
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, d]).expect("same size")
    }

    /// Draws a random augmentation family.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::ALL[rng.gen_range(0..Self::ALL.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn augmentations_preserve_shape_and_are_mild() {
        let mut rng = SmallRng::seed_from_u64(0);
        let x = Tensor::randn(&mut rng, &[4, 16], 0.0, 1.0);
        for aug in Augmentation::ALL {
            let y = aug.apply(&x, &mut rng);
            assert_eq!(y.dims(), x.dims(), "{aug:?}");
            let dist = x.sub(&y).unwrap().l2_norm() / x.l2_norm();
            assert!(dist < 2.0, "{aug:?} moved the input too far: {dist}");
        }
    }

    #[test]
    fn shift_is_cyclic() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let y = Augmentation::Shift.apply(&x, &mut rng);
        assert_eq!(y.data(), &[2.0, 3.0, 1.0]);
    }

    #[test]
    fn random_covers_all_families() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(format!("{:?}", Augmentation::random(&mut rng)));
        }
        assert_eq!(seen.len(), 4);
    }
}
