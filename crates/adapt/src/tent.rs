//! TENT: fully test-time adaptation by entropy minimization.

use crate::AdaptReport;
use nazar_nn::{entropy_of_logits, mean_entropy, Adam, Layer, MlpResNet, Mode, Optimizer};
use nazar_tensor::{Tape, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration for [`tent_adapt`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TentConfig {
    /// Adam learning rate for the BN affine parameters.
    pub lr: f32,
    /// Batch size for entropy minimization. TENT requires batches > 1:
    /// optimizing a single prediction has the trivial solution of assigning
    /// probability 1 to the argmax class (§3.4).
    pub batch_size: usize,
    /// Number of passes over the adaptation data.
    pub epochs: usize,
}

impl Default for TentConfig {
    fn default() -> Self {
        TentConfig {
            lr: 1e-2,
            batch_size: 64,
            epochs: 1,
        }
    }
}

/// Adapts `model` to unlabeled `data` by entropy minimization on its BN
/// layers (affine parameters via gradient; running statistics via exposure
/// to the adaptation batches in [`Mode::Adapt`]).
///
/// All non-BN parameters are frozen for the duration and their trainability
/// flags restored afterwards.
///
/// Rows containing non-finite features are dropped before adaptation
/// (DESIGN.md §9): one NaN row would poison the batch statistics — and
/// thus the shipped patch — for everyone. With no usable rows (including
/// an empty `data`) the model is left untouched and a zero-step
/// [`AdaptReport::noop`] is returned.
///
/// # Panics
///
/// Panics if `data` is not an `[n, d]` matrix or the batch size is smaller
/// than 2 (configuration contracts, not data conditions).
pub fn tent_adapt(model: &mut MlpResNet, data: &Tensor, config: &TentConfig) -> AdaptReport {
    assert!(
        config.batch_size >= 2,
        "tent requires batches of at least 2 inputs"
    );
    let Some(data) = crate::sanitize_rows(data) else {
        return AdaptReport::noop();
    };
    let data = &data;
    let n = data.nrows().expect("adaptation data is [n, d]");

    let snapshot = nazar_nn::BnPatch::extract(model);
    let entropy_before = mean_entropy_of(model, data);

    // TENT configuration: only γ/β receive gradients.
    model.set_all_trainable(false);
    model.set_bn_affine_trainable(true);

    let mut opt = Adam::new(config.lr);
    let mut steps = 0;
    for _ in 0..config.epochs {
        let mut start = 0;
        while start < n {
            let end = (start + config.batch_size).min(n);
            if end - start < 2 {
                break; // a trailing singleton batch has the trivial optimum
            }
            let batch = data.slice_rows(start, end).expect("rows in range");

            let tape = Tape::new();
            let xv = tape.leaf(batch);
            let logits = model.forward(&tape, &xv, Mode::Adapt);
            let loss = mean_entropy(&logits);
            let grads = loss.backward();
            model.collect_grads(&grads);
            opt.step(model);
            model.zero_grads();
            steps += 1;
            start = end;
        }
    }

    model.set_all_trainable(true);
    // Finite-but-extreme inputs can overflow the batch statistics and leave
    // NaN/Inf in the BN state even though every input row was finite. A
    // poisoned model must never leave this function (DESIGN.md §9): roll
    // back to the pre-adaptation snapshot and report zero effective steps.
    if !nazar_nn::BnPatch::extract(model).is_finite() {
        let _ = snapshot.apply(model);
        return AdaptReport {
            entropy_before,
            entropy_after: entropy_before,
            steps: 0,
        };
    }
    let entropy_after = mean_entropy_of(model, data);
    AdaptReport {
        entropy_before,
        entropy_after,
        steps,
    }
}

/// Mean prediction entropy of `model` on `data` (eval mode, no adaptation).
fn mean_entropy_of(model: &mut MlpResNet, data: &Tensor) -> f32 {
    let logits = model.logits(data, Mode::Eval);
    let h = entropy_of_logits(&logits);
    h.iter().sum::<f32>() / h.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{corrupt, trained_bed};
    use nazar_data::Corruption;
    use nazar_nn::train;

    #[test]
    fn tent_reduces_entropy_on_drifted_data() {
        let bed = trained_bed();
        let drifted = corrupt(&bed.clean_x, Corruption::GaussianNoise, 3, 7);
        let mut model = bed.model.clone();
        let report = tent_adapt(&mut model, &drifted, &TentConfig::default());
        assert!(report.entropy_after < report.entropy_before, "{report:?}");
        assert!(report.steps > 0);
    }

    #[test]
    fn tent_improves_accuracy_on_average_across_causes() {
        // TENT is not guaranteed to help on every single corruption (the
        // paper's Fig. 7 also shows near-ties), but on average over causes
        // it must win, and it must never collapse accuracy.
        let bed = trained_bed();
        let mut gain_sum = 0.0f32;
        for cause in [
            Corruption::Fog,
            Corruption::Contrast,
            Corruption::DefocusBlur,
        ] {
            let drifted = corrupt(&bed.clean_x, cause, 3, 11);
            let mut base = bed.model.clone();
            let before = train::evaluate(&mut base, &drifted, &bed.clean_y).accuracy;
            let mut adapted = bed.model.clone();
            tent_adapt(
                &mut adapted,
                &drifted,
                &TentConfig {
                    epochs: 3,
                    ..TentConfig::default()
                },
            );
            let after = train::evaluate(&mut adapted, &drifted, &bed.clean_y).accuracy;
            assert!(
                after >= before - 0.05,
                "{cause}: adapted {after} collapsed below non-adapted {before}"
            );
            gain_sum += after - before;
        }
        assert!(gain_sum > 0.0, "mean TENT gain {gain_sum} not positive");
    }

    #[test]
    fn tent_leaves_linear_weights_untouched() {
        let bed = trained_bed();
        let drifted = corrupt(&bed.clean_x, Corruption::Frost, 3, 13);
        let mut model = bed.model.clone();
        let patch_before = nazar_nn::BnPatch::extract(&mut model);
        tent_adapt(&mut model, &drifted, &TentConfig::default());
        let patch_after = nazar_nn::BnPatch::extract(&mut model);
        assert_ne!(patch_before, patch_after, "bn state must change");

        // Zero out the BN difference: applying the pre-adaptation patch must
        // fully restore the original predictions, proving nothing outside
        // BN changed.
        patch_before.apply(&mut model).unwrap();
        let mut original = bed.model.clone();
        let probe = corrupt(&bed.clean_x, Corruption::Frost, 2, 14);
        let a = model.logits(&probe, Mode::Eval);
        let b = original.logits(&probe, Mode::Eval);
        assert!(
            a.approx_eq(&b, 1e-4),
            "non-BN parameters drifted during TENT"
        );
    }

    #[test]
    fn trainability_flags_are_restored() {
        let bed = trained_bed();
        let mut model = bed.model.clone();
        let drifted = corrupt(&bed.clean_x, Corruption::Snow, 3, 15);
        tent_adapt(&mut model, &drifted, &TentConfig::default());
        let mut all_trainable = true;
        model.visit_params(&mut |p| all_trainable &= p.trainable());
        assert!(all_trainable);
    }

    #[test]
    fn empty_and_fully_poisoned_windows_are_noops() {
        // Regression (satellite 3): zero-sample windows and windows whose
        // every row is non-finite previously panicked; they must leave the
        // model untouched and report zero steps.
        let bed = trained_bed();
        let mut model = bed.model.clone();
        let before = nazar_nn::BnPatch::extract(&mut model);

        let empty = Tensor::zeros(&[0, 32]);
        let report = tent_adapt(&mut model, &empty, &TentConfig::default());
        assert_eq!(report, crate::AdaptReport::noop());

        let poisoned = Tensor::from_vec(vec![f32::NAN; 3 * 32], &[3, 32]).unwrap();
        let report = tent_adapt(&mut model, &poisoned, &TentConfig::default());
        assert_eq!(report, crate::AdaptReport::noop());

        assert_eq!(nazar_nn::BnPatch::extract(&mut model), before);
    }

    #[test]
    fn poisoned_rows_are_dropped_not_propagated() {
        // A handful of NaN rows inside an otherwise-good window must not
        // leak NaN into the adapted model's BN state or predictions.
        let bed = trained_bed();
        let drifted = corrupt(&bed.clean_x, Corruption::GaussianNoise, 3, 7);
        let mut data = drifted.data().to_vec();
        let d = drifted.ncols().unwrap();
        data[0] = f32::NAN;
        data[5 * d + 2] = f32::INFINITY;
        let poisoned = Tensor::from_vec(data, drifted.dims()).unwrap();

        let mut model = bed.model.clone();
        let report = tent_adapt(&mut model, &poisoned, &TentConfig::default());
        assert!(report.steps > 0);
        assert!(report.entropy_after.is_finite(), "{report:?}");
        let probe = model.logits(&bed.clean_x, Mode::Eval);
        assert!(probe.data().iter().all(|v| v.is_finite()));
        assert!(nazar_nn::BnPatch::extract(&mut model).is_finite());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_batches_rejected() {
        let bed = trained_bed();
        let mut model = bed.model.clone();
        let _ = tent_adapt(
            &mut model,
            &bed.clean_x,
            &TentConfig {
                batch_size: 1,
                ..TentConfig::default()
            },
        );
    }
}
