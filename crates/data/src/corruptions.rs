//! The sixteen-corruption suite (DESIGN.md substitution S4).
//!
//! Stands in for ImageNet-C [Hendrycks & Dietterich 2019]: sixteen distinct
//! corruption families, each parameterized by a severity in `0..=5` (0 is
//! the identity, 5 the strongest). The families are built to satisfy the
//! three properties the paper's evaluation relies on:
//!
//! 1. each family shifts the input distribution by a controllable amount
//!    (severity-monotone divergence from clean data),
//! 2. families are mutually divergent — a model adapted to one family is
//!    *not* thereby adapted to another (Table 4's premise), enforced by
//!    per-family fixed random pattern vectors and distinct functional forms,
//! 3. the weather subset (rain / snow / fog) matches the paper's end-to-end
//!    drift sources.

use crate::error::{DataError, Result};
use crate::sampling::seed_from_labels;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Corruption strength, `0..=5`. Severity 0 is the identity.
///
/// The paper uses severity 3 as its default and severity 5 for the
/// high-drift experiments (Fig. 9a/9b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Severity(u8);

impl Severity {
    /// The identity severity.
    pub const NONE: Severity = Severity(0);
    /// The paper's default severity.
    pub const DEFAULT: Severity = Severity(3);
    /// The maximum severity.
    pub const MAX: Severity = Severity(5);

    /// Validates and wraps a raw severity level.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSeverity`] for levels above 5.
    pub fn new(level: u8) -> Result<Self> {
        if level > 5 {
            return Err(DataError::InvalidSeverity { severity: level });
        }
        Ok(Severity(level))
    }

    /// The raw level in `0..=5`.
    pub fn level(self) -> u8 {
        self.0
    }

    /// Normalized strength in `[0, 1]` (level / 5).
    pub fn strength(self) -> f32 {
        f32::from(self.0) / 5.0
    }

    /// Draws a severity from `round(N(3, 1))` clipped to `0..=5` — the
    /// distribution used for the "different severity" experiments
    /// (Fig. 6b / 7b).
    pub fn sample_around_default<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0f32..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        let level = (3.0 + z).round().clamp(0.0, 5.0) as u8;
        Severity(level)
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// One of the sixteen corruption families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Corruption {
    GaussianNoise,
    ShotNoise,
    ImpulseNoise,
    DefocusBlur,
    GlassBlur,
    MotionBlur,
    ZoomBlur,
    Snow,
    Frost,
    Fog,
    Rain,
    Brightness,
    Contrast,
    Elastic,
    Pixelate,
    Jpeg,
}

impl Corruption {
    /// All sixteen families, in a stable order.
    pub const ALL: [Corruption; 16] = [
        Corruption::GaussianNoise,
        Corruption::ShotNoise,
        Corruption::ImpulseNoise,
        Corruption::DefocusBlur,
        Corruption::GlassBlur,
        Corruption::MotionBlur,
        Corruption::ZoomBlur,
        Corruption::Snow,
        Corruption::Frost,
        Corruption::Fog,
        Corruption::Rain,
        Corruption::Brightness,
        Corruption::Contrast,
        Corruption::Elastic,
        Corruption::Pixelate,
        Corruption::Jpeg,
    ];

    /// The weather-driven subset used in the end-to-end experiments.
    pub const WEATHER: [Corruption; 3] = [Corruption::Rain, Corruption::Snow, Corruption::Fog];

    /// Stable lowercase name (used as a drift-log attribute value).
    pub fn name(self) -> &'static str {
        match self {
            Corruption::GaussianNoise => "gaussian_noise",
            Corruption::ShotNoise => "shot_noise",
            Corruption::ImpulseNoise => "impulse_noise",
            Corruption::DefocusBlur => "defocus_blur",
            Corruption::GlassBlur => "glass_blur",
            Corruption::MotionBlur => "motion_blur",
            Corruption::ZoomBlur => "zoom_blur",
            Corruption::Snow => "snow",
            Corruption::Frost => "frost",
            Corruption::Fog => "fog",
            Corruption::Rain => "rain",
            Corruption::Brightness => "brightness",
            Corruption::Contrast => "contrast",
            Corruption::Elastic => "elastic",
            Corruption::Pixelate => "pixelate",
            Corruption::Jpeg => "jpeg",
        }
    }

    /// Parses a name produced by [`Corruption::name`].
    pub fn from_name(name: &str) -> Option<Corruption> {
        Corruption::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// The fixed per-family pattern vector of dimension `dim`.
    ///
    /// This is what makes families mutually divergent: every structured
    /// corruption perturbs inputs along its own frozen random direction.
    fn pattern(self, dim: usize) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed_from_labels(&["pattern", self.name()]));
        (0..dim)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect()
    }

    /// The valid feature range, mirroring the pixel-range clipping of
    /// ImageNet-C (`np.clip(x, 0, 1)` in the original suite). Clean samples
    /// live comfortably inside it; corruption outputs are clamped to it so
    /// that no family can "cheat" by blowing up input amplitude.
    pub const DOMAIN_BOUND: f32 = 4.0;

    /// Applies the corruption at the given severity.
    ///
    /// Severity 0 returns the input unchanged. The sample-specific noise is
    /// drawn from `rng` (so two corrupted images differ), while the family's
    /// structure (pattern vectors, displacement fields) is frozen per family.
    /// Outputs are clamped to `±DOMAIN_BOUND`, as image corruptions clip to
    /// the valid pixel range.
    pub fn apply<R: Rng + ?Sized>(self, x: &[f32], severity: Severity, rng: &mut R) -> Vec<f32> {
        let mut out = self.apply_unclamped(x, severity, rng);
        for v in &mut out {
            *v = v.clamp(-Self::DOMAIN_BOUND, Self::DOMAIN_BOUND);
        }
        out
    }

    fn apply_unclamped<R: Rng + ?Sized>(
        self,
        x: &[f32],
        severity: Severity,
        rng: &mut R,
    ) -> Vec<f32> {
        if severity.level() == 0 || x.is_empty() {
            return x.to_vec();
        }
        let s = severity.strength(); // in (0, 1]
        let d = x.len();
        let g = |rng: &mut R| -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        };
        match self {
            Corruption::GaussianNoise => {
                // Variance-preserving interpolation toward isotropic noise —
                // the bounded-pixel analog of clipped additive noise: the
                // class signal is destroyed without inflating the norm.
                let m = (0.95 * s).min(0.92);
                let keep = (1.0 - m * m).sqrt();
                x.iter().map(|&v| keep * v + m * 1.15 * g(rng)).collect()
            }
            Corruption::ShotNoise => {
                // Signal-dependent multiplicative noise, renormalized to the
                // input's original scale.
                let sigma = 1.3 * s;
                let noisy: Vec<f32> = x.iter().map(|&v| v * (1.0 + sigma * g(rng))).collect();
                let norm_in = x.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
                let norm_out = noisy.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
                let rescale = norm_in / norm_out;
                noisy.into_iter().map(|v| v * rescale).collect()
            }
            Corruption::ImpulseNoise => {
                // Replace a severity-dependent fraction of features with
                // saturated values from within the data range.
                let frac = 0.4 * s;
                x.iter()
                    .map(|&v| {
                        if rng.gen_range(0.0f32..1.0) < frac {
                            if rng.gen_bool(0.5) {
                                2.2
                            } else {
                                -2.2
                            }
                        } else {
                            v
                        }
                    })
                    .collect()
            }
            Corruption::DefocusBlur => {
                // Symmetric moving-average smoothing.
                let w = 1 + (4.0 * s).round() as usize;
                smooth(x, w)
            }
            Corruption::GlassBlur => {
                // Local random swaps followed by light smoothing.
                if d < 2 {
                    return x.to_vec();
                }
                let mut out = x.to_vec();
                let swaps = (d as f32 * 1.5 * s) as usize;
                for _ in 0..swaps {
                    let i = rng.gen_range(0..d);
                    let off = rng.gen_range(1..=3usize.min(d - 1));
                    let j = (i + off) % d;
                    out.swap(i, j);
                }
                smooth(&out, 2)
            }
            Corruption::MotionBlur => {
                // One-sided (causal) smoothing — directional streaking.
                let w = 1 + (6.0 * s).round() as usize;
                let mut out = vec![0.0f32; d];
                for (i, o) in out.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    let mut cnt = 0.0;
                    for k in 0..w {
                        let j = (i + k) % d;
                        let weight = 1.0 / (1.0 + k as f32);
                        acc += x[j] * weight;
                        cnt += weight;
                    }
                    *o = acc / cnt;
                }
                out
            }
            Corruption::ZoomBlur => {
                // Average of progressively index-stretched copies.
                let steps = 2 + (4.0 * s) as usize;
                let mut out = vec![0.0f32; d];
                for step in 0..steps {
                    let zoom = 1.0 + 0.08 * step as f32 * s;
                    for (i, o) in out.iter_mut().enumerate() {
                        let src = ((i as f32) / zoom).floor() as usize % d;
                        *o += x[src];
                    }
                }
                out.iter_mut().for_each(|v| *v /= steps as f32);
                out
            }
            Corruption::Snow => {
                // Sparse bright spikes along the frozen snow mask + whitening.
                let pat = self.pattern(d);
                // Flakes land in different places in every image: the
                // frozen mask is jittered per sample.
                let whitened: Vec<f32> = x.iter().map(|&v| v * (1.0 - 0.4 * s) + 1.0 * s).collect();
                whitened
                    .iter()
                    .zip(&pat)
                    .map(|(&v, &p)| {
                        if p + 0.5 * g(rng) > 0.9 {
                            v + 2.6 * s
                        } else {
                            v
                        }
                    })
                    .collect()
            }
            Corruption::Frost => {
                // Blend toward the frozen frost texture.
                let pat = self.pattern(d);
                let a = 0.55 * s;
                x.iter()
                    .zip(&pat)
                    .map(|(&v, &p)| (1.0 - a) * v + a * 2.0 * p)
                    .collect()
            }
            Corruption::Fog => {
                // Contrast collapse toward a bright constant plus a smooth haze.
                let pat = smooth(&self.pattern(d), 8);
                let a = 0.72 * s;
                x.iter()
                    .zip(&pat)
                    .map(|(&v, &p)| (1.0 - a) * v + a * (1.8 + 0.5 * p))
                    .collect()
            }
            Corruption::Rain => {
                // Rain as bright streak occlusion: a severity-dependent
                // fraction of features (biased toward the frozen streak
                // pattern, jittered per image so streaks fall differently in
                // every frame) is overwritten by bright streak values; the
                // rest darkens. Occlusion destroys class evidence the way
                // real streaks occlude object pixels.
                let pat = self.pattern(d);
                let cutoff = 1.35 - 1.6 * s;
                x.iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if pat[i] + 0.35 * g(rng) > cutoff {
                            1.3 + 0.8 * pat[(i * 7 + 3) % d]
                        } else {
                            v * (1.0 - 0.25 * s)
                        }
                    })
                    .collect()
            }
            Corruption::Brightness => {
                // Global lift with mild washout (bounded pixels lose
                // contrast as brightness saturates).
                x.iter().map(|&v| v * (1.0 - 0.3 * s) + 2.0 * s).collect()
            }
            Corruption::Contrast => {
                let mean = x.iter().sum::<f32>() / d as f32;
                let c = 1.0 - 0.85 * s;
                x.iter().map(|&v| (v - mean) * c + mean).collect()
            }
            Corruption::Elastic => {
                // Smooth random index displacement field (frozen per family)
                // plus a severity-scaled local stretching of amplitudes, so
                // the distortion keeps growing once the index permutation
                // saturates.
                let raw = self.pattern(d);
                let disp = smooth(&raw, 4);
                let scale = 6.0 * s;
                (0..d)
                    .map(|i| {
                        let off = (disp[i] * scale).round() as isize;
                        let j = (i as isize + off).rem_euclid(d as isize) as usize;
                        x[j] * (1.0 + 0.4 * s * raw[i])
                    })
                    .collect()
            }
            Corruption::Pixelate => {
                // Block-average features.
                let block = 1 + (6.0 * s) as usize;
                let mut out = vec![0.0f32; d];
                let mut i = 0;
                while i < d {
                    let end = (i + block).min(d);
                    let avg = x[i..end].iter().sum::<f32>() / (end - i) as f32;
                    out[i..end].iter_mut().for_each(|v| *v = avg);
                    i = end;
                }
                out
            }
            Corruption::Jpeg => {
                // Coarse value quantization.
                let step = 0.25 + 2.0 * s;
                x.iter().map(|&v| (v / step).round() * step).collect()
            }
        }
    }
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Symmetric circular moving average with window `w` (identity for `w <= 1`).
fn smooth(x: &[f32], w: usize) -> Vec<f32> {
    if w <= 1 || x.is_empty() {
        return x.to_vec();
    }
    let d = x.len();
    let shift = (w / 2) % d;
    (0..d)
        .map(|i| {
            let mut acc = 0.0;
            for k in 0..w {
                let j = (i + k + d - shift) % d;
                acc += x[j];
            }
            acc / w as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn clean(dim: usize) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(123);
        (0..dim)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect()
    }

    fn dist(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f32>()
            .sqrt()
    }

    #[test]
    fn severity_validation() {
        assert!(Severity::new(5).is_ok());
        assert!(Severity::new(6).is_err());
        assert_eq!(Severity::DEFAULT.level(), 3);
    }

    #[test]
    fn severity_zero_is_identity_for_all_families() {
        let x = clean(32);
        let mut rng = SmallRng::seed_from_u64(0);
        for c in Corruption::ALL {
            assert_eq!(c.apply(&x, Severity::NONE, &mut rng), x, "{c}");
        }
    }

    #[test]
    fn all_families_perturb_at_default_severity() {
        let x = clean(64);
        let mut rng = SmallRng::seed_from_u64(1);
        for c in Corruption::ALL {
            let y = c.apply(&x, Severity::DEFAULT, &mut rng);
            assert!(dist(&x, &y) > 0.15, "{c} barely changed the input");
        }
    }

    #[test]
    fn severity_is_monotone_in_expectation() {
        // Average displacement over many draws must grow with severity.
        let x = clean(64);
        for c in Corruption::ALL {
            let mut prev = 0.0f32;
            for level in [1u8, 3, 5] {
                let sev = Severity::new(level).unwrap();
                let mut rng = SmallRng::seed_from_u64(7);
                let avg: f32 = (0..40)
                    .map(|_| dist(&x, &c.apply(&x, sev, &mut rng)))
                    .sum::<f32>()
                    / 40.0;
                assert!(
                    avg > prev * 0.95,
                    "{c}: severity {level} displacement {avg} not above {prev}"
                );
                prev = avg;
            }
        }
    }

    #[test]
    fn families_are_mutually_divergent() {
        // Mean corrupted outputs of different families must differ more than
        // within-family sampling noise — property (2) in the module docs.
        let x = clean(64);
        let sev = Severity::DEFAULT;
        let mean_out = |c: Corruption| -> Vec<f32> {
            let mut rng = SmallRng::seed_from_u64(11);
            let mut acc = vec![0.0f32; 64];
            for _ in 0..60 {
                for (a, b) in acc.iter_mut().zip(c.apply(&x, sev, &mut rng)) {
                    *a += b / 60.0;
                }
            }
            acc
        };
        let means: Vec<(Corruption, Vec<f32>)> =
            Corruption::ALL.iter().map(|&c| (c, mean_out(c))).collect();
        let mut close_pairs = 0;
        for i in 0..means.len() {
            for j in (i + 1)..means.len() {
                if dist(&means[i].1, &means[j].1) < 0.4 {
                    close_pairs += 1;
                }
            }
        }
        // The pure-noise families necessarily share a mean near the clean
        // input; allow a handful of such collisions but no more.
        assert!(
            close_pairs <= 6,
            "{close_pairs} family pairs have nearly equal means"
        );
    }

    #[test]
    fn weather_subset_is_rain_snow_fog() {
        assert_eq!(
            Corruption::WEATHER.map(|c| c.name()),
            ["rain", "snow", "fog"]
        );
    }

    #[test]
    fn name_round_trip() {
        for c in Corruption::ALL {
            assert_eq!(Corruption::from_name(c.name()), Some(c));
        }
        assert_eq!(Corruption::from_name("nonexistent"), None);
    }

    #[test]
    fn pattern_is_frozen_per_family() {
        assert_eq!(Corruption::Snow.pattern(16), Corruption::Snow.pattern(16));
        assert_ne!(Corruption::Snow.pattern(16), Corruption::Fog.pattern(16));
    }

    #[test]
    fn smooth_window_one_is_identity() {
        let x = clean(10);
        assert_eq!(smooth(&x, 1), x);
        assert_eq!(smooth(&x, 0), x);
    }

    #[test]
    fn sample_around_default_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let s = Severity::sample_around_default(&mut rng);
            assert!(s.level() <= 5);
            seen.insert(s.level());
        }
        assert!(seen.contains(&3));
        assert!(seen.len() >= 3, "distribution should spread around 3");
    }

    proptest::proptest! {
        #[test]
        fn apply_preserves_dimension(dim in 1usize..128, level in 0u8..=5) {
            let x = vec![0.5f32; dim];
            let sev = Severity::new(level).unwrap();
            let mut rng = SmallRng::seed_from_u64(0);
            for c in Corruption::ALL {
                proptest::prop_assert_eq!(c.apply(&x, sev, &mut rng).len(), dim);
            }
        }

        #[test]
        fn apply_output_is_finite(level in 0u8..=5) {
            let x = clean(48);
            let sev = Severity::new(level).unwrap();
            let mut rng = SmallRng::seed_from_u64(1);
            for c in Corruption::ALL {
                proptest::prop_assert!(
                    c.apply(&x, sev, &mut rng).iter().all(|v| v.is_finite())
                );
            }
        }
    }
}
