//! Streaming data structures shared by the end-to-end datasets.

use crate::corruptions::{Corruption, Severity};
use crate::space::Sample;
use crate::timeline::SimDate;
use crate::weather::Weather;
use serde::{Deserialize, Serialize};

/// A set of labeled examples (training or validation split).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LabeledSet {
    /// Feature vectors, one per example.
    pub features: Vec<Vec<f32>>,
    /// Class labels, parallel to `features`.
    pub labels: Vec<usize>,
}

impl LabeledSet {
    /// An empty set.
    pub fn new() -> Self {
        LabeledSet::default()
    }

    /// Builds a set from samples.
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        let mut set = LabeledSet::new();
        for s in samples {
            set.features.push(s.features);
            set.labels.push(s.label);
        }
        set
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Appends one example.
    pub fn push(&mut self, features: Vec<f32>, label: usize) {
        self.features.push(features);
        self.labels.push(label);
    }
}

impl Extend<Sample> for LabeledSet {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for s in iter {
            self.push(s.features, s.label);
        }
    }
}

impl FromIterator<Sample> for LabeledSet {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        let mut set = LabeledSet::new();
        set.extend(iter);
        set
    }
}

/// One streamed inference request, as seen by a device.
///
/// Carries the (possibly corrupted) input plus everything the simulation
/// knows about its provenance: where and when it was taken, the weather at
/// that time, and — for evaluation only — the ground-truth drift cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamItem {
    /// The input feature vector, after any corruption.
    pub features: Vec<f32>,
    /// Ground-truth class (never shown to Nazar; used for accuracy metrics).
    pub label: usize,
    /// Simulated capture date.
    pub date: SimDate,
    /// Location attribute (city or region).
    pub location: String,
    /// Device identifier attribute.
    pub device_id: String,
    /// Weather at (location, date).
    pub weather: Weather,
    /// Ground-truth corruption applied, if any (evaluation only).
    pub true_cause: Option<Corruption>,
    /// Severity of the applied corruption ([`Severity::NONE`] if clean).
    pub severity: Severity,
}

impl StreamItem {
    /// Whether the item is drifted in the ground truth.
    pub fn is_drifted(&self) -> bool {
        self.true_cause.is_some()
    }
}

/// The stream of one location, in (date, arrival) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocationStream {
    /// Location attribute shared by all items.
    pub location: String,
    /// Items ordered by date.
    pub items: Vec<StreamItem>,
}

impl LocationStream {
    /// Items falling into window `w` of `windows` equal windows.
    pub fn window_items(&self, w: usize, windows: usize) -> impl Iterator<Item = &StreamItem> {
        self.items
            .iter()
            .filter(move |item| item.date.window(windows) == w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(day: u16, cause: Option<Corruption>) -> StreamItem {
        StreamItem {
            features: vec![0.0; 4],
            label: 0,
            date: SimDate::new(day),
            location: "x".into(),
            device_id: "d0".into(),
            weather: Weather::Clear,
            true_cause: cause,
            severity: if cause.is_some() {
                Severity::DEFAULT
            } else {
                Severity::NONE
            },
        }
    }

    #[test]
    fn labeled_set_collects_samples() {
        let set: LabeledSet = vec![
            Sample {
                features: vec![1.0],
                label: 0,
            },
            Sample {
                features: vec![2.0],
                label: 1,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.labels, vec![0, 1]);
    }

    #[test]
    fn window_items_filters_by_date() {
        let stream = LocationStream {
            location: "x".into(),
            items: vec![
                item(0, None),
                item(60, Some(Corruption::Fog)),
                item(111, None),
            ],
        };
        assert_eq!(stream.window_items(0, 8).count(), 1);
        assert_eq!(stream.window_items(7, 8).count(), 1);
        let mid: Vec<_> = stream.window_items(SimDate::new(60).window(8), 8).collect();
        assert_eq!(mid.len(), 1);
        assert!(mid[0].is_drifted());
    }
}
