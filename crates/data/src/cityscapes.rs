//! The Cityscapes end-to-end workload (DESIGN.md substitution S2).
//!
//! Emulates the paper's self-driving-car object-classification dataset:
//! temporally-ordered streams of traffic-object images from European cities,
//! split 14% / 6% / 80% into train / validation / stream, submitted "in
//! equal intervals" across January 1 – April 21, 2020, with weather-driven
//! corruptions from the [`WeatherModel`] trace.

use crate::corruptions::Severity;
use crate::sampling::seed_from_labels;
use crate::space::ClassSpace;
use crate::stream::{LabeledSet, LocationStream, StreamItem};
use crate::timeline::SimDate;
use crate::weather::WeatherModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// European cities used for the default configuration (a subset of the 50
/// Cityscapes cities; `CityscapesConfig::paper()` uses more).
pub const CITYSCAPES_CITIES: [&str; 12] = [
    "hamburg",
    "zurich",
    "strasbourg",
    "cologne",
    "krefeld",
    "weimar",
    "tubingen",
    "stuttgart",
    "darmstadt",
    "aachen",
    "jena",
    "bremen",
];

/// Traffic-object classes of the preprocessed dataset.
///
/// The Ekya-style preprocessing crops individual objects out of the scene
/// segmentation; we keep the fine-grained subtype labels that preprocessing
/// yields (24 classes), which also places the classifier's confidence in
/// the operating regime the paper's detector assumes.
pub const CITYSCAPES_CLASSES: [&str; 32] = [
    "car-sedan",
    "car-suv",
    "car-van",
    "car-taxi",
    "person-adult",
    "person-child",
    "person-worker",
    "bicycle",
    "cargo-bike",
    "truck-box",
    "truck-semi",
    "truck-pickup",
    "bus-city",
    "bus-coach",
    "bus-school",
    "motorcycle",
    "moped",
    "rider-cyclist",
    "rider-motorcyclist",
    "train-tram",
    "train-regional",
    "traffic-sign-regulatory",
    "traffic-sign-warning",
    "traffic-sign-guide",
    "traffic-light",
    "trailer",
    "caravan",
    "e-scooter",
    "delivery-van",
    "police-car",
    "ambulance",
    "street-cleaner",
];

/// Configuration for [`CityscapesDataset::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityscapesConfig {
    /// Master seed.
    pub seed: u64,
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of cities to emulate (cycled through a fixed name list).
    pub cities: usize,
    /// Total images, split 14% / 6% / 80% as in the paper.
    pub total_images: usize,
    /// Vehicles (devices) per city.
    pub vehicles_per_city: usize,
    /// Severity of weather corruptions.
    pub severity: Severity,
    /// Base sampling noise of the class space.
    pub base_noise: f32,
    /// Per-class difficulty spread.
    pub difficulty_spread: f32,
}

impl Default for CityscapesConfig {
    fn default() -> Self {
        CityscapesConfig {
            seed: 19_55,
            dim: 64,
            cities: 12,
            total_images: 9_000,
            vehicles_per_city: 3,
            severity: Severity::DEFAULT,
            base_noise: 0.75,
            difficulty_spread: 0.8,
        }
    }
}

impl CityscapesConfig {
    /// A reduced configuration for unit tests.
    pub fn small() -> Self {
        CityscapesConfig {
            cities: 4,
            total_images: 1_500,
            ..CityscapesConfig::default()
        }
    }

    /// The paper-scale configuration: 27,604 images across 50 cities.
    pub fn paper() -> Self {
        CityscapesConfig {
            cities: 50,
            total_images: 27_604,
            ..CityscapesConfig::default()
        }
    }

    fn city_name(&self, index: usize) -> String {
        let base = CITYSCAPES_CITIES[index % CITYSCAPES_CITIES.len()];
        if index < CITYSCAPES_CITIES.len() {
            base.to_string()
        } else {
            format!("{base}-{}", index / CITYSCAPES_CITIES.len())
        }
    }
}

/// The generated Cityscapes workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityscapesDataset {
    /// The generative model.
    pub space: ClassSpace,
    /// Training split (14% of images).
    pub train: LabeledSet,
    /// Validation split (6% of images).
    pub val: LabeledSet,
    /// Per-city streams (80% of images), in temporal order.
    pub streams: Vec<LocationStream>,
    /// The weather trace.
    pub weather: WeatherModel,
    /// The configuration used.
    pub config: CityscapesConfig,
}

impl CityscapesDataset {
    /// Generates the full workload deterministically from `config.seed`.
    pub fn generate(config: &CityscapesConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let classes = CITYSCAPES_CLASSES.len();
        let space = ClassSpace::new(
            &mut rng,
            config.dim,
            classes,
            config.base_noise,
            config.difficulty_spread,
        );

        let train_n = config.total_images * 14 / 100;
        let val_n = config.total_images * 6 / 100;
        let stream_n = config.total_images - train_n - val_n;

        let mut train = LabeledSet::new();
        for i in 0..train_n {
            let s = space.sample(&mut rng, i % classes);
            train.push(s.features, s.label);
        }
        let mut val = LabeledSet::new();
        for i in 0..val_n {
            let s = space.sample(&mut rng, i % classes);
            val.push(s.features, s.label);
        }

        let weather = WeatherModel::new(config.seed ^ 0x5c5c);
        let per_city = stream_n / config.cities.max(1);
        let streams = (0..config.cities)
            .map(|ci| generate_city(&config.city_name(ci), per_city, &space, &weather, config))
            .collect();

        CityscapesDataset {
            space,
            train,
            val,
            streams,
            weather,
            config: config.clone(),
        }
    }

    /// Total number of streamed items across all cities.
    pub fn stream_len(&self) -> usize {
        self.streams.iter().map(|s| s.items.len()).sum()
    }
}

fn generate_city(
    city: &str,
    count: usize,
    space: &ClassSpace,
    weather: &WeatherModel,
    config: &CityscapesConfig,
) -> LocationStream {
    let mut rng = SmallRng::seed_from_u64(seed_from_labels(&[
        &config.seed.to_string(),
        city,
        "stream",
    ]));
    let classes = space.num_classes();
    let mut items = Vec::with_capacity(count);
    for i in 0..count {
        // "Images are submitted for inference in equal intervals across
        // these dates" (§5.1): spread indices uniformly over the range.
        let day = (i as u64 * u64::from(SimDate::TOTAL_DAYS) / count.max(1) as u64) as u16;
        let date = SimDate::new(day.min(SimDate::TOTAL_DAYS - 1));
        let w = weather.weather(city, date);
        let class = rng.gen_range(0..classes);
        let sample = space.sample(&mut rng, class);
        let (features, cause, severity) = match w.corruption() {
            Some(c) => (
                c.apply(&sample.features, config.severity, &mut rng),
                Some(c),
                config.severity,
            ),
            None => (sample.features, None, Severity::NONE),
        };
        let vehicle = i % config.vehicles_per_city.max(1);
        items.push(StreamItem {
            features,
            label: sample.label,
            date,
            location: city.to_string(),
            device_id: format!("{city}-veh{vehicle:02}"),
            weather: w,
            true_cause: cause,
            severity,
        });
    }
    LocationStream {
        location: city.to_string(),
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ratios_match_paper() {
        let cfg = CityscapesConfig::small();
        let d = CityscapesDataset::generate(&cfg);
        let total = cfg.total_images as f64;
        assert!((d.train.len() as f64 / total - 0.14).abs() < 0.01);
        assert!((d.val.len() as f64 / total - 0.06).abs() < 0.01);
        assert!((d.stream_len() as f64 / total - 0.80).abs() < 0.02);
    }

    #[test]
    fn streams_cover_the_full_date_range() {
        let d = CityscapesDataset::generate(&CityscapesConfig::small());
        for s in &d.streams {
            let first = s.items.first().unwrap().date;
            let last = s.items.last().unwrap().date;
            assert_eq!(first, SimDate::new(0));
            assert!(last.day_index() >= SimDate::TOTAL_DAYS - 2, "last {last}");
            for pair in s.items.windows(2) {
                assert!(pair[0].date <= pair[1].date);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CityscapesConfig::small();
        assert_eq!(
            CityscapesDataset::generate(&cfg),
            CityscapesDataset::generate(&cfg)
        );
    }

    #[test]
    fn city_names_extend_beyond_base_list() {
        let cfg = CityscapesConfig {
            cities: 15,
            ..CityscapesConfig::small()
        };
        assert_eq!(cfg.city_name(0), "hamburg");
        assert_eq!(cfg.city_name(12), "hamburg-1");
        let d = CityscapesDataset::generate(&cfg);
        assert_eq!(d.streams.len(), 15);
    }

    #[test]
    fn weather_drift_rate_is_plausible() {
        let d = CityscapesDataset::generate(&CityscapesConfig::small());
        let total = d.stream_len() as f64;
        let drifted = d
            .streams
            .iter()
            .flat_map(|s| &s.items)
            .filter(|i| i.is_drifted())
            .count() as f64;
        let frac = drifted / total;
        assert!((0.18..=0.42).contains(&frac), "drift fraction {frac}");
    }

    #[test]
    fn vehicles_rotate_within_city() {
        let d = CityscapesDataset::generate(&CityscapesConfig::small());
        let devices: std::collections::HashSet<&str> = d.streams[0]
            .items
            .iter()
            .map(|i| i.device_id.as_str())
            .collect();
        assert_eq!(devices.len(), d.config.vehicles_per_city);
    }
}
