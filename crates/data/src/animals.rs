//! The Animals end-to-end workload (DESIGN.md substitution S3).
//!
//! Emulates the paper's geo-distributed species-identification app: seven
//! locations on different continents, each with its own species distribution
//! and a configurable fleet of devices submitting inference requests as a
//! Poisson process (default 16 devices/location, mean two images per device
//! per day). Weather-driven corruptions follow the [`WeatherModel`] trace,
//! and class skew is controlled by a Zipf parameter exactly as in §5.1.

use crate::corruptions::Severity;
use crate::sampling::{poisson, seed_from_labels, Zipf};
use crate::space::ClassSpace;
use crate::stream::{LabeledSet, LocationStream, StreamItem};
use crate::timeline::SimDate;
use crate::weather::WeatherModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The seven emulated locations.
///
/// The paper names New York, Tibet, Beijing, New South Wales, the United
/// Kingdom and Quebec and counts seven; we add São Paulo as the seventh.
pub const ANIMAL_LOCATIONS: [&str; 7] = [
    "new-york",
    "tibet",
    "beijing",
    "new-south-wales",
    "united-kingdom",
    "quebec",
    "sao-paulo",
];

/// Configuration for [`AnimalsDataset::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnimalsConfig {
    /// Master seed for the generative model and all sampling.
    pub seed: u64,
    /// Feature dimensionality of the synthetic images.
    pub dim: usize,
    /// Number of species classes.
    pub classes: usize,
    /// Training images per class.
    pub train_per_class: usize,
    /// Validation images per class.
    pub val_per_class: usize,
    /// Devices per location.
    pub devices_per_location: usize,
    /// Mean inference requests per device per day (Poisson).
    pub arrivals_per_day: f64,
    /// Zipf skew parameter α over classes per location (0 = uniform).
    pub zipf_alpha: f64,
    /// Severity of weather corruptions applied to drifted days.
    pub severity: Severity,
    /// Base sampling noise of the class space.
    pub base_noise: f32,
    /// Per-class difficulty spread (0 = homogeneous classes).
    pub difficulty_spread: f32,
}

impl Default for AnimalsConfig {
    fn default() -> Self {
        AnimalsConfig {
            seed: 20_20,
            dim: 64,
            classes: 40,
            train_per_class: 80,
            val_per_class: 15,
            devices_per_location: 16,
            arrivals_per_day: 2.0,
            zipf_alpha: 0.0,
            severity: Severity::DEFAULT,
            base_noise: 0.68,
            difficulty_spread: 1.0,
        }
    }
}

impl AnimalsConfig {
    /// A reduced configuration for unit tests and doc examples.
    pub fn small() -> Self {
        AnimalsConfig {
            classes: 8,
            dim: 32,
            train_per_class: 30,
            val_per_class: 8,
            devices_per_location: 3,
            ..AnimalsConfig::default()
        }
    }
}

/// The generated Animals workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnimalsDataset {
    /// The generative model (kept for microbenchmarks that need fresh draws).
    pub space: ClassSpace,
    /// Balanced training split.
    pub train: LabeledSet,
    /// Balanced validation split.
    pub val: LabeledSet,
    /// Per-location inference streams covering the simulated range.
    pub streams: Vec<LocationStream>,
    /// The weather trace the streams were generated under.
    pub weather: WeatherModel,
    /// The configuration used.
    pub config: AnimalsConfig,
}

impl AnimalsDataset {
    /// Generates the full workload deterministically from `config.seed`.
    pub fn generate(config: &AnimalsConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let space = ClassSpace::new(
            &mut rng,
            config.dim,
            config.classes,
            config.base_noise,
            config.difficulty_spread,
        );
        let train =
            LabeledSet::from_samples(space.sample_balanced(&mut rng, config.train_per_class));
        let val = LabeledSet::from_samples(space.sample_balanced(&mut rng, config.val_per_class));
        let weather = WeatherModel::new(config.seed ^ 0x77ea);

        let streams = ANIMAL_LOCATIONS
            .iter()
            .map(|&loc| generate_location(loc, &space, &weather, config))
            .collect();

        AnimalsDataset {
            space,
            train,
            val,
            streams,
            weather,
            config: config.clone(),
        }
    }

    /// Total number of streamed items across all locations.
    pub fn stream_len(&self) -> usize {
        self.streams.iter().map(|s| s.items.len()).sum()
    }
}

/// Builds the per-location class distribution: a Zipf law whose head ranks
/// go to the *hardest* (lowest-accuracy) classes, with a location-specific
/// jitter so different locations still favor different species.
///
/// The paper introduces class skew precisely to emulate locations with "a
/// higher proportion of images from lower-accuracy classes" (§5.1), so the
/// Zipf ranking follows class difficulty rather than a uniform permutation.
fn location_class_weights(location: &str, space: &ClassSpace, alpha: f64, seed: u64) -> Vec<f64> {
    let classes = space.num_classes();
    let zipf = Zipf::new(classes, alpha);
    let mut rng = SmallRng::seed_from_u64(seed_from_labels(&[&seed.to_string(), location, "perm"]));
    let mut keyed: Vec<(f32, usize)> = (0..classes)
        .map(|c| {
            let jitter: f32 = rng.gen_range(0.0..0.15);
            (space.difficulty(c) + jitter, c)
        })
        .collect();
    // Hardest classes first → they receive the largest Zipf mass.
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut weights = vec![0.0f64; classes];
    for (rank, &(_, class)) in keyed.iter().enumerate() {
        weights[class] = zipf.prob(rank);
    }
    weights
}

fn generate_location(
    location: &str,
    space: &ClassSpace,
    weather: &WeatherModel,
    config: &AnimalsConfig,
) -> LocationStream {
    let weights = location_class_weights(location, space, config.zipf_alpha, config.seed);
    let mut rng = SmallRng::seed_from_u64(seed_from_labels(&[
        &config.seed.to_string(),
        location,
        "stream",
    ]));
    let mut items = Vec::new();
    for date in SimDate::all() {
        let w = weather.weather(location, date);
        for device in 0..config.devices_per_location {
            let device_id = format!("{location}-dev{device:02}");
            let arrivals = poisson(&mut rng, config.arrivals_per_day);
            for _ in 0..arrivals {
                let class = crate::sampling::categorical(&mut rng, &weights);
                let sample = space.sample(&mut rng, class);
                let (features, cause, severity) = match w.corruption() {
                    Some(c) => (
                        c.apply(&sample.features, config.severity, &mut rng),
                        Some(c),
                        config.severity,
                    ),
                    None => (sample.features, None, Severity::NONE),
                };
                items.push(StreamItem {
                    features,
                    label: sample.label,
                    date,
                    location: location.to_string(),
                    device_id: device_id.clone(),
                    weather: w,
                    true_cause: cause,
                    severity,
                });
            }
        }
    }
    LocationStream {
        location: location.to_string(),
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = AnimalsConfig::small();
        let a = AnimalsDataset::generate(&cfg);
        let b = AnimalsDataset::generate(&cfg);
        assert_eq!(a.stream_len(), b.stream_len());
        assert_eq!(a.train, b.train);
        assert_eq!(a.streams[0].items.first(), b.streams[0].items.first());
    }

    #[test]
    fn splits_are_balanced() {
        let cfg = AnimalsConfig::small();
        let d = AnimalsDataset::generate(&cfg);
        assert_eq!(d.train.len(), cfg.classes * cfg.train_per_class);
        assert_eq!(d.val.len(), cfg.classes * cfg.val_per_class);
        for c in 0..cfg.classes {
            assert_eq!(
                d.train.labels.iter().filter(|&&l| l == c).count(),
                cfg.train_per_class
            );
        }
    }

    #[test]
    fn stream_covers_all_locations_and_is_date_ordered() {
        let d = AnimalsDataset::generate(&AnimalsConfig::small());
        assert_eq!(d.streams.len(), 7);
        for s in &d.streams {
            assert!(!s.items.is_empty(), "{} has no items", s.location);
            for pair in s.items.windows(2) {
                assert!(pair[0].date <= pair[1].date, "stream out of order");
            }
        }
    }

    #[test]
    fn arrival_volume_matches_poisson_mean() {
        let cfg = AnimalsConfig::small();
        let d = AnimalsDataset::generate(&cfg);
        let expected = 7.0 * cfg.devices_per_location as f64 * 112.0 * cfg.arrivals_per_day;
        let actual = d.stream_len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.1,
            "stream {actual} vs expected {expected}"
        );
    }

    #[test]
    fn drifted_items_carry_weather_cause() {
        let d = AnimalsDataset::generate(&AnimalsConfig::small());
        for s in &d.streams {
            for item in &s.items {
                assert_eq!(item.true_cause, item.weather.corruption());
                assert_eq!(item.is_drifted(), item.weather.is_drifting());
                if item.is_drifted() {
                    assert_eq!(item.severity, d.config.severity);
                } else {
                    assert_eq!(item.severity, Severity::NONE);
                }
            }
        }
    }

    #[test]
    fn drift_rate_is_near_paper_value() {
        let d = AnimalsDataset::generate(&AnimalsConfig::small());
        let total = d.stream_len() as f64;
        let drifted = d
            .streams
            .iter()
            .flat_map(|s| &s.items)
            .filter(|i| i.is_drifted())
            .count() as f64;
        let frac = drifted / total;
        assert!((0.25..=0.45).contains(&frac), "drift fraction {frac}");
    }

    #[test]
    fn zipf_skew_concentrates_location_labels() {
        let uniform = AnimalsDataset::generate(&AnimalsConfig::small());
        let skewed = AnimalsDataset::generate(&AnimalsConfig {
            zipf_alpha: 2.0,
            ..AnimalsConfig::small()
        });
        let top_share = |d: &AnimalsDataset| -> f64 {
            let items = &d.streams[0].items;
            let mut counts = vec![0usize; d.config.classes];
            for i in items {
                counts[i.label] += 1;
            }
            *counts.iter().max().unwrap() as f64 / items.len() as f64
        };
        assert!(top_share(&skewed) > top_share(&uniform) + 0.1);
    }

    #[test]
    fn locations_favor_different_species_under_skew() {
        let d = AnimalsDataset::generate(&AnimalsConfig {
            zipf_alpha: 1.0,
            ..AnimalsConfig::small()
        });
        let top_class = |s: &LocationStream| -> usize {
            let mut counts = vec![0usize; d.config.classes];
            for i in &s.items {
                counts[i.label] += 1;
            }
            counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0
        };
        let tops: std::collections::HashSet<usize> = d.streams.iter().map(top_class).collect();
        assert!(tops.len() >= 2, "locations share top species: {tops:?}");
    }
}
