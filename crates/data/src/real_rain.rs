//! The "real rainy images" stand-in (DESIGN.md substitution S6).
//!
//! §5.3 of the paper tests the detector on real rain: half the images come
//! from Cityscapes, half from the RID (Rain in Driving) dataset, restricted
//! to the five classes common to both. Real rain is *harder* than the
//! synthetic corruption because the RID camera differs from the Cityscapes
//! cameras — the drift is a camera-statistics shift *composed with* rain,
//! only partially matching what the detector was calibrated on.
//!
//! We reproduce exactly that structure: RID-like samples pass through a
//! frozen affine "camera shift" (per-feature gain and offset) before a rain
//! corruption of randomized severity.

use crate::corruptions::{Corruption, Severity};
use crate::sampling::seed_from_labels;
use crate::space::{ClassSpace, Sample};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of classes shared between the two source datasets in the paper.
pub const SHARED_CLASSES: usize = 5;

/// A frozen camera-statistics shift: `x' = gain ⊙ x + offset`.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraShift {
    gain: Vec<f32>,
    offset: Vec<f32>,
}

impl CameraShift {
    /// Builds the deterministic RID-camera shift for a feature dimension.
    pub fn rid_camera(dim: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed_from_labels(&["rid-camera", "v1"]));
        let gain = (0..dim)
            .map(|_| 1.0 + 0.08 * (rng.gen_range(0.0f32..1.0) - 0.5))
            .collect();
        let offset = (0..dim)
            .map(|_| 0.15 * (rng.gen_range(0.0f32..1.0) - 0.35))
            .collect();
        CameraShift { gain, offset }
    }

    /// Applies the shift.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the shift's dimension.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.gain.len(), "camera shift dimension mismatch");
        x.iter()
            .zip(self.gain.iter().zip(&self.offset))
            .map(|(&v, (&g, &o))| g * v + o)
            .collect()
    }
}

/// One item of the real-rain evaluation set.
#[derive(Debug, Clone, PartialEq)]
pub struct RealRainItem {
    /// The input features.
    pub features: Vec<f32>,
    /// Ground-truth class (restricted to `0..SHARED_CLASSES`).
    pub label: usize,
    /// Whether this item came from the RID-like (rainy) source.
    pub from_rid: bool,
}

/// Generates the mixed Cityscapes/RID evaluation set of `2 * n_per_source`
/// items over the five shared classes, as in §5.3.
///
/// Clean items are drawn straight from `space`; RID items additionally pass
/// through the frozen [`CameraShift`] and a mild rain corruption — real
/// dash-cam rain sits low on the synthetic severity scale (the paper's
/// accuracy drop is ~8.5pp).
pub fn generate(space: &ClassSpace, n_per_source: usize, seed: u64) -> Vec<RealRainItem> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let camera = CameraShift::rid_camera(space.dim());
    let classes = SHARED_CLASSES.min(space.num_classes());
    let mut items = Vec::with_capacity(2 * n_per_source);
    for i in 0..n_per_source {
        let class = i % classes;
        // Cityscapes-side (clean) item.
        let clean: Sample = space.sample(&mut rng, class);
        items.push(RealRainItem {
            features: clean.features,
            label: class,
            from_rid: false,
        });
        // RID-side item: camera shift + rain at varying severity.
        let raw = space.sample(&mut rng, class);
        let shifted = camera.apply(&raw.features);
        // Real rain in dash-cam footage is usually mild relative to the
        // synthetic severity scale (the paper's accuracy drop is ~8.5pp).
        let severity = Severity::new(1).expect("severity in range");
        let rained = Corruption::Rain.apply(&shifted, severity, &mut rng);
        items.push(RealRainItem {
            features: rained,
            label: class,
            from_rid: true,
        });
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ClassSpace {
        ClassSpace::new(&mut SmallRng::seed_from_u64(5), 32, 8, 0.5, 0.5)
    }

    #[test]
    fn generates_balanced_sources() {
        let items = generate(&space(), 50, 0);
        assert_eq!(items.len(), 100);
        assert_eq!(items.iter().filter(|i| i.from_rid).count(), 50);
    }

    #[test]
    fn labels_restricted_to_shared_classes() {
        let items = generate(&space(), 40, 1);
        assert!(items.iter().all(|i| i.label < SHARED_CLASSES));
    }

    #[test]
    fn rid_items_are_shifted_from_clean_distribution() {
        let s = space();
        let items = generate(&s, 200, 2);
        let mean_of = |from_rid: bool| -> f32 {
            let sel: Vec<&RealRainItem> = items.iter().filter(|i| i.from_rid == from_rid).collect();
            sel.iter().flat_map(|i| &i.features).sum::<f32>() / (sel.len() * s.dim()) as f32
        };
        let diff = (mean_of(true) - mean_of(false)).abs();
        assert!(diff > 0.02, "rid shift too small: {diff}");
    }

    #[test]
    fn camera_shift_is_frozen() {
        assert_eq!(CameraShift::rid_camera(16), CameraShift::rid_camera(16));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn camera_shift_checks_dimension() {
        CameraShift::rid_camera(8).apply(&[0.0; 4]);
    }
}
