//! Samplers built from `rand` primitives.
//!
//! The paper's workloads need Poisson arrivals (inference requests per
//! device per day), Zipf class skew (Fig. 5c / 9c), and categorical draws
//! (per-location species distributions). These are implemented here rather
//! than pulled from `rand_distr` to keep the dependency set at the allowed
//! baseline.

use rand::Rng;

/// Draws a Poisson-distributed count with the given mean (Knuth's method).
///
/// Suitable for the small rates used here (λ ≤ ~30); for larger rates the
/// loop cost grows linearly with λ.
///
/// # Panics
///
/// Panics if `lambda` is not finite and positive.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "lambda must be positive"
    );
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Draws an index from an explicit categorical distribution.
///
/// Weights need not be normalized; zero-weight categories are never drawn.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(
        !weights.is_empty(),
        "categorical requires at least one weight"
    );
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0,
        "categorical weights must sum to a positive value"
    );
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// A Zipf distribution over `n` ranks with exponent `alpha`.
///
/// `alpha == 0` is uniform; larger `alpha` concentrates probability on the
/// first ranks — exactly the knob the paper turns to create class skew.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    probs: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution `p(k) ∝ 1 / (k+1)^alpha` over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf requires at least one rank");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and non-negative"
        );
        let mut probs: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(alpha)).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        Zipf { probs }
    }

    /// Probability of rank `k` (0-based).
    pub fn prob(&self, k: usize) -> f64 {
        self.probs.get(k).copied().unwrap_or(0.0)
    }

    /// The full probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Samples a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        categorical(rng, &self.probs)
    }
}

/// Deterministically hashes a set of labels into a 64-bit seed (FNV-1a).
///
/// Used to derive per-(location, day) and per-corruption seeds so that
/// generated data is reproducible regardless of iteration order.
pub fn seed_from_labels(parts: &[&str]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for part in parts {
        for b in part.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash ^= 0xff;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = SmallRng::seed_from_u64(0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 2.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(1);
        let weights = [1.0, 3.0];
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| categorical(&mut rng, &weights) == 1)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn categorical_skips_zero_weight() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(categorical(&mut rng, &[0.0, 1.0, 0.0]), 1);
        }
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.prob(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_alpha_one_concentrates_head() {
        let z = Zipf::new(10, 1.0);
        assert!(z.prob(0) > z.prob(1));
        assert!(z.prob(0) > 3.0 * z.prob(9));
        let total: f64 = z.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seed_from_labels_is_order_sensitive_and_stable() {
        let a = seed_from_labels(&["new-york", "2020-01-18"]);
        let b = seed_from_labels(&["new-york", "2020-01-18"]);
        let c = seed_from_labels(&["2020-01-18", "new-york"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest::proptest! {
        #[test]
        fn zipf_probs_sum_to_one(n in 1usize..50, alpha in 0.0f64..3.0) {
            let z = Zipf::new(n, alpha);
            let total: f64 = z.probs().iter().sum();
            proptest::prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn zipf_is_monotone_nonincreasing(n in 2usize..50, alpha in 0.0f64..3.0) {
            let z = Zipf::new(n, alpha);
            for k in 1..n {
                proptest::prop_assert!(z.prob(k) <= z.prob(k - 1) + 1e-12);
            }
        }
    }
}
