//! A DetAIL-style drifting-text workload (ISSUE 10).
//!
//! The vision workloads emulate ImageNet-C-style covariate shift; language
//! drift looks different: topics wander and *vocabulary* shifts (new terms
//! displace old ones), which is what the DetAIL line of work streams at its
//! detectors. This module builds the same shape synthetically:
//!
//! * a [`TopicModel`] holds one token distribution per topic (the classes)
//!   over a fixed vocabulary — a "document" is the normalized term-frequency
//!   vector of `tokens_per_doc` draws, so features live on the probability
//!   simplex and feed the same `MlpResNet` classifiers as the vision
//!   features;
//! * drift reuses the [`WeatherModel`] timeline and [`Corruption`] causes:
//!   on a drifting day, tokens are drawn from the mixture
//!   `(1 − s) · topic + s · shift(cause)`, where `shift(cause)` is a seeded
//!   per-family vocabulary distribution and `s` is the configured
//!   [`Severity`] strength. Ground-truth cause and severity ride on each
//!   [`StreamItem`] exactly as in the vision streams, so the unchanged
//!   detect → FIM → adapt pipeline consumes the text stream as-is.
//!
//! Everything is deterministic from `config.seed`, matching
//! [`crate::AnimalsDataset`]'s contract.

use crate::corruptions::{Corruption, Severity};
use crate::sampling::{categorical, poisson, seed_from_labels, Zipf};
use crate::stream::{LabeledSet, LocationStream, StreamItem};
use crate::timeline::SimDate;
use crate::weather::WeatherModel;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The seven emulated newsroom locations (same geography as the vision
/// workloads, so weather traces and location attributes line up).
pub const TEXT_LOCATIONS: [&str; 7] = crate::animals::ANIMAL_LOCATIONS;

/// Configuration for [`TextDataset::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextConfig {
    /// Master seed for the topic model and all sampling.
    pub seed: u64,
    /// Vocabulary size — the feature dimensionality of the term-frequency
    /// vectors.
    pub vocab: usize,
    /// Number of topics (the label classes).
    pub topics: usize,
    /// Tokens drawn per document; more tokens → less sampling noise per
    /// term-frequency vector.
    pub tokens_per_doc: usize,
    /// Concentration of each topic's token distribution (higher = peakier
    /// topics = easier classification).
    pub topic_sharpness: f32,
    /// Training documents per topic.
    pub train_per_topic: usize,
    /// Validation documents per topic.
    pub val_per_topic: usize,
    /// Devices per location.
    pub devices_per_location: usize,
    /// Mean inference requests per device per day (Poisson).
    pub arrivals_per_day: f64,
    /// Zipf skew parameter α over topics per location (0 = uniform).
    pub zipf_alpha: f64,
    /// Severity of the vocabulary shift applied on drifting days.
    pub severity: Severity,
}

impl Default for TextConfig {
    fn default() -> Self {
        TextConfig {
            seed: 20_21,
            vocab: 64,
            topics: 20,
            tokens_per_doc: 96,
            topic_sharpness: 2.5,
            train_per_topic: 80,
            val_per_topic: 15,
            devices_per_location: 16,
            arrivals_per_day: 2.0,
            zipf_alpha: 0.0,
            severity: Severity::DEFAULT,
        }
    }
}

impl TextConfig {
    /// A reduced configuration for unit tests and the text golden trace.
    pub fn small() -> Self {
        TextConfig {
            vocab: 32,
            topics: 6,
            tokens_per_doc: 48,
            train_per_topic: 30,
            val_per_topic: 8,
            devices_per_location: 3,
            ..TextConfig::default()
        }
    }
}

/// The generative topic model: one token distribution per topic plus one
/// seeded shift distribution per corruption family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicModel {
    vocab: usize,
    tokens_per_doc: usize,
    /// `topics[t][v]` — probability of token `v` under topic `t`.
    topics: Vec<Vec<f64>>,
    /// `shifts[c][v]` — the drifted vocabulary distribution for corruption
    /// family `c` (indexed by position in [`Corruption::ALL`]).
    shifts: Vec<Vec<f64>>,
}

/// Draws a normalized token distribution: exponentiated Gaussian weights,
/// so `sharpness` controls how peaked the distribution is.
fn draw_distribution<R: Rng + ?Sized>(rng: &mut R, vocab: usize, sharpness: f32) -> Vec<f64> {
    let mut w: Vec<f64> = (0..vocab)
        .map(|_| {
            let g: f32 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            f64::from(sharpness * g).exp()
        })
        .collect();
    let sum: f64 = w.iter().sum();
    for p in &mut w {
        *p /= sum;
    }
    w
}

impl TopicModel {
    /// Builds the topic and shift distributions deterministically from the
    /// configuration.
    pub fn new(config: &TextConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let topics = (0..config.topics)
            .map(|_| draw_distribution(&mut rng, config.vocab, config.topic_sharpness))
            .collect();
        // Each corruption family gets its own vocabulary: independent of the
        // topics (and of each other), seeded by the family name so the same
        // cause shifts the stream the same way at every location.
        let shifts = Corruption::ALL
            .iter()
            .map(|c| {
                let mut r = SmallRng::seed_from_u64(seed_from_labels(&[
                    &config.seed.to_string(),
                    "shift",
                    c.name(),
                ]));
                draw_distribution(&mut r, config.vocab, config.topic_sharpness)
            })
            .collect();
        TopicModel {
            vocab: config.vocab,
            tokens_per_doc: config.tokens_per_doc,
            topics,
            shifts,
        }
    }

    /// Vocabulary size (feature dimensionality).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Number of topics (label classes).
    pub fn num_topics(&self) -> usize {
        self.topics.len()
    }

    /// The shift distribution for a corruption family.
    fn shift(&self, cause: Corruption) -> &[f64] {
        let idx = Corruption::ALL
            .iter()
            .position(|&c| c == cause)
            .expect("every corruption family has a shift distribution");
        &self.shifts[idx]
    }

    /// Samples one clean document from `topic`: the term-frequency vector
    /// of `tokens_per_doc` categorical draws.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, topic: usize) -> Vec<f32> {
        self.sample_from(rng, &self.topics[topic])
    }

    /// Samples one drifted document: tokens come from the mixture
    /// `(1 − s) · topic + s · shift(cause)` with `s` the severity strength.
    pub fn sample_drifted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        topic: usize,
        cause: Corruption,
        severity: Severity,
    ) -> Vec<f32> {
        let s = f64::from(severity.strength());
        let shift = self.shift(cause);
        let mix: Vec<f64> = self.topics[topic]
            .iter()
            .zip(shift)
            .map(|(&t, &d)| (1.0 - s) * t + s * d)
            .collect();
        self.sample_from(rng, &mix)
    }

    fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R, dist: &[f64]) -> Vec<f32> {
        let mut counts = vec![0u32; self.vocab];
        for _ in 0..self.tokens_per_doc {
            counts[categorical(rng, dist)] += 1;
        }
        let n = self.tokens_per_doc.max(1) as f32;
        counts.into_iter().map(|c| c as f32 / n).collect()
    }
}

/// The generated drifting-text workload: same shape as
/// [`crate::AnimalsDataset`], so fleets, orchestrators and benches consume
/// it unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextDataset {
    /// The generative topic model (kept for benches that need fresh draws).
    pub model: TopicModel,
    /// Balanced clean training split.
    pub train: LabeledSet,
    /// Balanced clean validation split.
    pub val: LabeledSet,
    /// Per-location inference streams covering the simulated range.
    pub streams: Vec<LocationStream>,
    /// The weather trace the streams were generated under.
    pub weather: WeatherModel,
    /// The configuration used.
    pub config: TextConfig,
}

impl TextDataset {
    /// Generates the full workload deterministically from `config.seed`.
    pub fn generate(config: &TextConfig) -> Self {
        let model = TopicModel::new(config);
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x7e47);
        let mut train = LabeledSet::new();
        for topic in 0..config.topics {
            for _ in 0..config.train_per_topic {
                train.push(model.sample(&mut rng, topic), topic);
            }
        }
        let mut val = LabeledSet::new();
        for topic in 0..config.topics {
            for _ in 0..config.val_per_topic {
                val.push(model.sample(&mut rng, topic), topic);
            }
        }
        let weather = WeatherModel::new(config.seed ^ 0x77ea);
        let streams = TEXT_LOCATIONS
            .iter()
            .map(|&loc| generate_location(loc, &model, &weather, config))
            .collect();
        TextDataset {
            model,
            train,
            val,
            streams,
            weather,
            config: config.clone(),
        }
    }

    /// Total number of streamed items across all locations.
    pub fn stream_len(&self) -> usize {
        self.streams.iter().map(|s| s.items.len()).sum()
    }
}

/// Per-location topic weights: a Zipf law over a location-seeded
/// permutation of the topics, so skewed configurations make different
/// locations favor different topics.
fn location_topic_weights(location: &str, topics: usize, alpha: f64, seed: u64) -> Vec<f64> {
    let zipf = Zipf::new(topics, alpha);
    let mut rng =
        SmallRng::seed_from_u64(seed_from_labels(&[&seed.to_string(), location, "topics"]));
    let mut order: Vec<usize> = (0..topics).collect();
    order.shuffle(&mut rng);
    let mut weights = vec![0.0f64; topics];
    for (rank, &topic) in order.iter().enumerate() {
        weights[topic] = zipf.prob(rank);
    }
    weights
}

fn generate_location(
    location: &str,
    model: &TopicModel,
    weather: &WeatherModel,
    config: &TextConfig,
) -> LocationStream {
    let weights = location_topic_weights(location, config.topics, config.zipf_alpha, config.seed);
    let mut rng = SmallRng::seed_from_u64(seed_from_labels(&[
        &config.seed.to_string(),
        location,
        "text-stream",
    ]));
    let mut items = Vec::new();
    for date in SimDate::all() {
        let w = weather.weather(location, date);
        for device in 0..config.devices_per_location {
            let device_id = format!("{location}-txt{device:02}");
            let arrivals = poisson(&mut rng, config.arrivals_per_day);
            for _ in 0..arrivals {
                let topic = categorical(&mut rng, &weights);
                let (features, cause, severity) = match w.corruption() {
                    Some(c) => (
                        model.sample_drifted(&mut rng, topic, c, config.severity),
                        Some(c),
                        config.severity,
                    ),
                    None => (model.sample(&mut rng, topic), None, Severity::NONE),
                };
                items.push(StreamItem {
                    features,
                    label: topic,
                    date,
                    location: location.to_string(),
                    device_id: device_id.clone(),
                    weather: w,
                    true_cause: cause,
                    severity,
                });
            }
        }
    }
    LocationStream {
        location: location.to_string(),
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TextConfig::small();
        let a = TextDataset::generate(&cfg);
        let b = TextDataset::generate(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.stream_len(), b.stream_len());
        assert_eq!(a.streams[0].items.first(), b.streams[0].items.first());
    }

    #[test]
    fn splits_are_balanced_simplex_vectors() {
        let cfg = TextConfig::small();
        let d = TextDataset::generate(&cfg);
        assert_eq!(d.train.len(), cfg.topics * cfg.train_per_topic);
        assert_eq!(d.val.len(), cfg.topics * cfg.val_per_topic);
        for row in &d.train.features {
            assert_eq!(row.len(), cfg.vocab);
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "tf vector sums to {sum}");
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn stream_covers_all_locations_and_is_date_ordered() {
        let d = TextDataset::generate(&TextConfig::small());
        assert_eq!(d.streams.len(), 7);
        for s in &d.streams {
            assert!(!s.items.is_empty(), "{} has no items", s.location);
            for pair in s.items.windows(2) {
                assert!(pair[0].date <= pair[1].date, "stream out of order");
            }
        }
    }

    #[test]
    fn drifted_items_carry_weather_cause() {
        let d = TextDataset::generate(&TextConfig::small());
        for s in &d.streams {
            for item in &s.items {
                assert_eq!(item.true_cause, item.weather.corruption());
                assert_eq!(item.is_drifted(), item.weather.is_drifting());
                if item.is_drifted() {
                    assert_eq!(item.severity, d.config.severity);
                } else {
                    assert_eq!(item.severity, Severity::NONE);
                }
            }
        }
    }

    #[test]
    fn vocabulary_shift_moves_token_mass() {
        // Mean drifted token distribution must diverge from the mean clean
        // one: that separation is what makes the stream *detectably*
        // drifted for distribution-based detectors.
        let d = TextDataset::generate(&TextConfig::small());
        let mean = |pred: &dyn Fn(&StreamItem) -> bool| -> Vec<f64> {
            let mut acc = vec![0.0f64; d.config.vocab];
            let mut n = 0u64;
            for item in d.streams.iter().flat_map(|s| &s.items) {
                if pred(item) {
                    for (a, &f) in acc.iter_mut().zip(&item.features) {
                        *a += f64::from(f);
                    }
                    n += 1;
                }
            }
            acc.into_iter().map(|a| a / n.max(1) as f64).collect()
        };
        let clean = mean(&|i| !i.is_drifted());
        let drifted = mean(&|i| i.is_drifted());
        let l1: f64 = clean
            .iter()
            .zip(&drifted)
            .map(|(&c, &x)| (c - x).abs())
            .sum();
        assert!(l1 > 0.2, "clean/drifted mean-token L1 distance {l1}");
    }

    #[test]
    fn zipf_skew_concentrates_location_topics() {
        let uniform = TextDataset::generate(&TextConfig::small());
        let skewed = TextDataset::generate(&TextConfig {
            zipf_alpha: 2.0,
            ..TextConfig::small()
        });
        let top_share = |d: &TextDataset| -> f64 {
            let items = &d.streams[0].items;
            let mut counts = vec![0usize; d.config.topics];
            for i in items {
                counts[i.label] += 1;
            }
            *counts.iter().max().unwrap() as f64 / items.len() as f64
        };
        assert!(top_share(&skewed) > top_share(&uniform) + 0.1);
    }

    #[test]
    fn shift_distributions_differ_per_corruption_family() {
        let model = TopicModel::new(&TextConfig::small());
        let rain = model.shift(Corruption::Rain).to_vec();
        let snow = model.shift(Corruption::Snow).to_vec();
        let fog = model.shift(Corruption::Fog).to_vec();
        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum() };
        assert!(l1(&rain, &snow) > 0.1);
        assert!(l1(&rain, &fog) > 0.1);
        assert!(l1(&snow, &fog) > 0.1);
    }
}
