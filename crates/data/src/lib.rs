//! Synthetic vision datasets, corruptions, and weather traces.
//!
//! The paper evaluates Nazar on two computer-vision datasets (Cityscapes and
//! an ImageNet-derived "Animals" dataset) corrupted with the ImageNet-C
//! suite according to historical 2020 weather. None of those inputs are
//! available here, so this crate builds faithful synthetic equivalents
//! (DESIGN.md substitutions S2–S6):
//!
//! * [`ClassSpace`] — a prototype-based generative model of "images"
//!   (feature vectors) with per-class difficulty, giving the same per-class
//!   accuracy variability the paper measures (Fig. 5b).
//! * [`Corruption`] — sixteen parameterized corruption families with
//!   severity 0–5, mutually divergent by construction, including the three
//!   weather corruptions (rain / snow / fog) used end-to-end.
//! * [`WeatherModel`] — deterministic per-(location, day) weather traces for
//!   January 1 – April 21, 2020, calibrated to the paper's drift rates.
//! * [`AnimalsDataset`] / [`CityscapesDataset`] — the two end-to-end
//!   workloads, streaming [`StreamItem`]s tagged with device, location,
//!   date, weather and ground-truth drift cause.
//! * [`real_rain`] — the "real rainy images" stand-in (camera-statistics
//!   shift composed with rain) used to stress the detector (§5.3).
//! * [`TextDataset`] — a DetAIL-style drifting-*text* workload:
//!   term-frequency documents from a seeded [`TopicModel`], with weather
//!   days swapping in per-cause shifted vocabularies, streaming through the
//!   same [`StreamItem`] shape as the vision workloads.
//!
//! # Example
//!
//! ```
//! use nazar_data::{AnimalsConfig, AnimalsDataset};
//!
//! let dataset = AnimalsDataset::generate(&AnimalsConfig::small());
//! assert!(!dataset.train.features.is_empty());
//! assert_eq!(dataset.train.features.len(), dataset.train.labels.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod animals;
mod cityscapes;
mod corruptions;
mod error;
pub mod real_rain;
pub mod sampling;
mod space;
mod stream;
mod text;
mod timeline;
mod weather;

pub use animals::{AnimalsConfig, AnimalsDataset, ANIMAL_LOCATIONS};
pub use cityscapes::{CityscapesConfig, CityscapesDataset, CITYSCAPES_CITIES, CITYSCAPES_CLASSES};
pub use corruptions::{Corruption, Severity};
pub use error::{DataError, Result};
pub use space::{ClassSpace, Sample};
pub use stream::{LabeledSet, LocationStream, StreamItem};
pub use text::{TextConfig, TextDataset, TopicModel, TEXT_LOCATIONS};
pub use timeline::SimDate;
pub use weather::{Weather, WeatherModel};
