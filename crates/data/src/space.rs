//! The prototype-based generative model of synthetic "images".

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single labeled example: a feature vector plus its true class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The "image" as a dense feature vector.
    pub features: Vec<f32>,
    /// Ground-truth class id.
    pub label: usize,
}

/// The generative model behind every synthetic dataset (DESIGN.md S2/S3).
///
/// Each class `c` has a fixed prototype `μ_c ~ N(0, I)` scaled to a common
/// norm, and a *difficulty* factor `d_c`; clean images of class `c` are
/// `μ_c + d_c·σ·ε` with `ε ~ N(0, I)`. Difficulty varies across classes so
/// that per-class accuracy is highly variable even with balanced training
/// data — the property the paper measures in Fig. 5b and exploits for the
/// class-skew drift source (Fig. 5c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpace {
    dim: usize,
    prototypes: Vec<Vec<f32>>,
    difficulty: Vec<f32>,
    base_noise: f32,
}

impl ClassSpace {
    /// Default prototype norm; chosen together with `base_noise` so that a
    /// trained classifier lands in the paper's clean-accuracy regime.
    const PROTO_NORM: f32 = 3.0;

    /// Creates a space of `classes` prototypes in `dim` dimensions.
    ///
    /// `base_noise` controls overall task hardness; `difficulty_spread ≥ 0`
    /// controls how much per-class hardness varies (0 = homogeneous).
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `classes` is zero, or `base_noise` is not positive.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        dim: usize,
        classes: usize,
        base_noise: f32,
        difficulty_spread: f32,
    ) -> Self {
        assert!(dim > 0 && classes > 0, "dim and classes must be nonzero");
        assert!(base_noise > 0.0, "base_noise must be positive");
        let mut prototypes = Vec::with_capacity(classes);
        for _ in 0..classes {
            let mut p: Vec<f32> = (0..dim).map(|_| gaussian(rng)).collect();
            let norm = p.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in &mut p {
                *x *= Self::PROTO_NORM / norm;
            }
            prototypes.push(p);
        }
        let difficulty = (0..classes)
            .map(|_| 1.0 + difficulty_spread * (rng.gen_range(0.0f32..1.0) - 0.3))
            .map(|d| d.max(0.2))
            .collect();
        ClassSpace {
            dim,
            prototypes,
            difficulty,
            base_noise,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.prototypes.len()
    }

    /// The difficulty factor of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn difficulty(&self, class: usize) -> f32 {
        self.difficulty[class]
    }

    /// Draws one clean sample of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, class: usize) -> Sample {
        let proto = &self.prototypes[class];
        let sigma = self.base_noise * self.difficulty[class];
        let features = proto.iter().map(|&p| p + sigma * gaussian(rng)).collect();
        Sample {
            features,
            label: class,
        }
    }

    /// Draws `n` samples of each class, in class order.
    pub fn sample_balanced<R: Rng + ?Sized>(&self, rng: &mut R, n_per_class: usize) -> Vec<Sample> {
        let mut out = Vec::with_capacity(n_per_class * self.num_classes());
        for c in 0..self.num_classes() {
            for _ in 0..n_per_class {
                out.push(self.sample(rng, c));
            }
        }
        out
    }
}

/// One standard normal draw via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn space() -> ClassSpace {
        ClassSpace::new(&mut SmallRng::seed_from_u64(0), 16, 5, 0.5, 1.0)
    }

    #[test]
    fn prototypes_have_common_norm() {
        let s = space();
        for c in 0..s.num_classes() {
            let clean = s.prototypes[c].iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((clean - ClassSpace::PROTO_NORM).abs() < 1e-3);
        }
    }

    #[test]
    fn samples_cluster_around_their_prototype() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(1);
        for c in 0..s.num_classes() {
            let sample = s.sample(&mut rng, c);
            assert_eq!(sample.label, c);
            let d_own: f32 = sample
                .features
                .iter()
                .zip(&s.prototypes[c])
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            let other = (c + 1) % s.num_classes();
            let d_other: f32 = sample
                .features
                .iter()
                .zip(&s.prototypes[other])
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            assert!(d_own < d_other, "class {c}: {d_own} !< {d_other}");
        }
    }

    #[test]
    fn difficulty_spread_varies_noise() {
        let s = space();
        let min = (0..s.num_classes())
            .map(|c| s.difficulty(c))
            .fold(f32::MAX, f32::min);
        let max = (0..s.num_classes())
            .map(|c| s.difficulty(c))
            .fold(f32::MIN, f32::max);
        assert!(
            max > min + 0.1,
            "difficulties should vary, got [{min}, {max}]"
        );
    }

    #[test]
    fn sample_balanced_covers_all_classes() {
        let s = space();
        let samples = s.sample_balanced(&mut SmallRng::seed_from_u64(2), 3);
        assert_eq!(samples.len(), 15);
        for c in 0..5 {
            assert_eq!(samples.iter().filter(|x| x.label == c).count(), 3);
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = ClassSpace::new(&mut SmallRng::seed_from_u64(9), 8, 3, 0.4, 0.5);
        let b = ClassSpace::new(&mut SmallRng::seed_from_u64(9), 8, 3, 0.4, 0.5);
        assert_eq!(a, b);
    }
}
