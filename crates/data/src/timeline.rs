//! Simulation calendar: January 1 – April 21, 2020.
//!
//! Both end-to-end datasets are "emulated from January 1, 2020 to April 21,
//! 2020" (§5.1). Dates are day indices into that range; windows divide the
//! range evenly (the paper defaults to 8 windows and ablates 4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A date within the simulated range, as a day offset from 2020-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDate(u16);

/// Cumulative days at the start of each month of 2020 (a leap year).
const MONTH_STARTS: [u16; 5] = [0, 31, 60, 91, 121];

impl SimDate {
    /// Total number of days in the simulated range (Jan 1 ..= Apr 21).
    pub const TOTAL_DAYS: u16 = 112;

    /// The first simulated day, 2020-01-01.
    pub const START: SimDate = SimDate(0);

    /// Creates a date from a day offset.
    ///
    /// # Panics
    ///
    /// Panics if `day_index >= TOTAL_DAYS`.
    pub fn new(day_index: u16) -> Self {
        assert!(
            day_index < Self::TOTAL_DAYS,
            "day {day_index} outside simulated range"
        );
        SimDate(day_index)
    }

    /// The day offset from 2020-01-01.
    pub fn day_index(self) -> u16 {
        self.0
    }

    /// Month of the year, 1-based (1 = January .. 4 = April).
    pub fn month(self) -> u8 {
        match self.0 {
            d if d < MONTH_STARTS[1] => 1,
            d if d < MONTH_STARTS[2] => 2,
            d if d < MONTH_STARTS[3] => 3,
            _ => 4,
        }
    }

    /// Day of the month, 1-based.
    pub fn day_of_month(self) -> u8 {
        let m = self.month() as usize;
        (self.0 - MONTH_STARTS[m - 1] + 1) as u8
    }

    /// All simulated days in order.
    pub fn all() -> impl Iterator<Item = SimDate> {
        (0..Self::TOTAL_DAYS).map(SimDate)
    }

    /// Which of `windows` equal time windows this date falls in (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero.
    pub fn window(self, windows: usize) -> usize {
        assert!(windows > 0, "window count must be nonzero");
        let w = (self.0 as usize * windows) / Self::TOTAL_DAYS as usize;
        w.min(windows - 1)
    }

    /// The half-open day range `[start, end)` of window `w` out of `windows`.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero or `w >= windows`.
    pub fn window_range(w: usize, windows: usize) -> (u16, u16) {
        assert!(
            windows > 0 && w < windows,
            "invalid window {w} of {windows}"
        );
        let total = Self::TOTAL_DAYS as usize;
        let start = (w * total) / windows;
        let end = ((w + 1) * total) / windows;
        (start as u16, end as u16)
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2020-{:02}-{:02}", self.month(), self.day_of_month())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_dates_format_correctly() {
        assert_eq!(SimDate::new(0).to_string(), "2020-01-01");
        assert_eq!(SimDate::new(17).to_string(), "2020-01-18");
        assert_eq!(SimDate::new(31).to_string(), "2020-02-01");
        assert_eq!(SimDate::new(59).to_string(), "2020-02-29"); // leap year
        assert_eq!(SimDate::new(60).to_string(), "2020-03-01");
        assert_eq!(SimDate::new(111).to_string(), "2020-04-21");
    }

    #[test]
    #[should_panic(expected = "outside simulated range")]
    fn out_of_range_rejected() {
        let _ = SimDate::new(112);
    }

    #[test]
    fn windows_partition_the_range() {
        for windows in [1usize, 4, 8] {
            let mut counts = vec![0usize; windows];
            for d in SimDate::all() {
                counts[d.window(windows)] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), 112);
            let max = counts.iter().max().unwrap();
            let min = counts.iter().min().unwrap();
            assert!(max - min <= 1, "uneven windows {counts:?}");
        }
    }

    #[test]
    fn window_range_agrees_with_window() {
        for w in 0..8 {
            let (start, end) = SimDate::window_range(w, 8);
            for d in start..end {
                assert_eq!(SimDate::new(d).window(8), w);
            }
        }
    }

    #[test]
    fn all_yields_total_days() {
        assert_eq!(SimDate::all().count(), 112);
    }
}
