//! Error type for dataset configuration.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DataError>;

/// Errors raised by dataset and generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A configuration field was invalid.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// A severity outside the supported `0..=5` range was requested.
    InvalidSeverity {
        /// The requested severity.
        severity: u8,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig { field, reason } => {
                write!(f, "invalid config field `{field}`: {reason}")
            }
            DataError::InvalidSeverity { severity } => {
                write!(f, "severity {severity} outside supported range 0..=5")
            }
        }
    }
}

impl std::error::Error for DataError {}
