//! Deterministic synthetic weather traces (DESIGN.md substitution S5).
//!
//! The paper drives its weather drifts from historical 2020 weather data
//! (Kaggle / Weather Underground). Here every (location, day) pair maps
//! deterministically to a weather condition drawn from a per-location,
//! per-month climate profile. The profiles are calibrated so that roughly
//! 29% (European cities) / 36% (animal-app locations) of days carry a
//! weather drift, matching §5.2 of the paper.

use crate::corruptions::Corruption;
use crate::sampling::{categorical, seed_from_labels};
use crate::timeline::SimDate;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A daily weather condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weather {
    /// No weather drift.
    Clear,
    /// Rainy conditions (maps to [`Corruption::Rain`]).
    Rain,
    /// Snowy conditions (maps to [`Corruption::Snow`]).
    Snow,
    /// Foggy conditions (maps to [`Corruption::Fog`]).
    Fog,
}

impl Weather {
    /// The drift-log attribute value for this condition.
    pub fn name(self) -> &'static str {
        match self {
            Weather::Clear => "clear-day",
            Weather::Rain => "rain",
            Weather::Snow => "snow",
            Weather::Fog => "fog",
        }
    }

    /// The corruption this weather applies to images, if any.
    pub fn corruption(self) -> Option<Corruption> {
        match self {
            Weather::Clear => None,
            Weather::Rain => Some(Corruption::Rain),
            Weather::Snow => Some(Corruption::Snow),
            Weather::Fog => Some(Corruption::Fog),
        }
    }

    /// Whether this condition causes data drift.
    pub fn is_drifting(self) -> bool {
        !matches!(self, Weather::Clear)
    }
}

impl fmt::Display for Weather {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A climate archetype: per-month `[clear, rain, snow, fog]` weights.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Climate {
    /// Rows indexed by month-1 (Jan..Apr), columns `[clear, rain, snow, fog]`.
    monthly: [[f64; 4]; 4],
}

impl Climate {
    /// Cold continental winter: snow-heavy January/February.
    const CONTINENTAL: Climate = Climate {
        monthly: [
            [0.58, 0.08, 0.26, 0.08],
            [0.60, 0.10, 0.22, 0.08],
            [0.66, 0.16, 0.10, 0.08],
            [0.70, 0.22, 0.02, 0.06],
        ],
    };
    /// Mild oceanic: rain and fog dominate, little snow.
    const OCEANIC: Climate = Climate {
        monthly: [
            [0.60, 0.22, 0.04, 0.14],
            [0.62, 0.22, 0.03, 0.13],
            [0.66, 0.22, 0.01, 0.11],
            [0.68, 0.24, 0.00, 0.08],
        ],
    };
    /// High-altitude: snow all season, some fog.
    const ALPINE: Climate = Climate {
        monthly: [
            [0.52, 0.02, 0.36, 0.10],
            [0.54, 0.03, 0.33, 0.10],
            [0.58, 0.06, 0.26, 0.10],
            [0.62, 0.10, 0.20, 0.08],
        ],
    };
    /// Southern-hemisphere summer/autumn: rain only.
    const AUSTRAL: Climate = Climate {
        monthly: [
            [0.62, 0.34, 0.00, 0.04],
            [0.62, 0.34, 0.00, 0.04],
            [0.64, 0.30, 0.00, 0.06],
            [0.66, 0.28, 0.00, 0.06],
        ],
    };
    /// Generic European city (used for the Cityscapes locations): slightly
    /// clearer than the animal-app climates so the dataset-level drift rate
    /// lands near the paper's 29%.
    const EUROPEAN: Climate = Climate {
        monthly: [
            [0.66, 0.12, 0.14, 0.08],
            [0.68, 0.13, 0.11, 0.08],
            [0.72, 0.16, 0.05, 0.07],
            [0.74, 0.19, 0.01, 0.06],
        ],
    };

    fn weights(&self, month: u8) -> [f64; 4] {
        self.monthly[(month - 1) as usize]
    }
}

/// Deterministic weather oracle: `(location, date) -> Weather`.
///
/// Known animal-app locations get hand-assigned climates; any other location
/// (e.g. the Cityscapes cities) gets the generic European profile. Two
/// models with the same seed produce identical traces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeatherModel {
    seed: u64,
}

impl Default for WeatherModel {
    fn default() -> Self {
        WeatherModel::new(2020)
    }
}

impl WeatherModel {
    /// Creates a weather oracle with the given trace seed.
    pub fn new(seed: u64) -> Self {
        WeatherModel { seed }
    }

    fn climate(location: &str) -> Climate {
        match location {
            "new-york" | "quebec" | "beijing" => Climate::CONTINENTAL,
            "united-kingdom" => Climate::OCEANIC,
            "tibet" => Climate::ALPINE,
            "new-south-wales" | "sao-paulo" => Climate::AUSTRAL,
            _ => Climate::EUROPEAN,
        }
    }

    /// The weather at `location` on `date`.
    pub fn weather(&self, location: &str, date: SimDate) -> Weather {
        let seed = seed_from_labels(&[
            &self.seed.to_string(),
            location,
            &date.day_index().to_string(),
        ]);
        let mut rng = SmallRng::seed_from_u64(seed);
        let weights = Self::climate(location).weights(date.month());
        match categorical(&mut rng, &weights) {
            0 => Weather::Clear,
            1 => Weather::Rain,
            2 => Weather::Snow,
            _ => Weather::Fog,
        }
    }

    /// Fraction of (location, day) pairs with drifting weather.
    pub fn drift_fraction(&self, locations: &[&str]) -> f64 {
        let mut drifting = 0usize;
        let mut total = 0usize;
        for loc in locations {
            for d in SimDate::all() {
                total += 1;
                if self.weather(loc, d).is_drifting() {
                    drifting += 1;
                }
            }
        }
        drifting as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weather_is_deterministic() {
        let m = WeatherModel::new(7);
        let d = SimDate::new(20);
        assert_eq!(m.weather("new-york", d), m.weather("new-york", d));
    }

    #[test]
    fn different_seeds_change_traces() {
        let a = WeatherModel::new(1);
        let b = WeatherModel::new(2);
        let differs = SimDate::all().any(|d| a.weather("new-york", d) != b.weather("new-york", d));
        assert!(differs);
    }

    #[test]
    fn animal_locations_drift_near_paper_rate() {
        // Paper: 36% of days in the animal dataset have weather drift.
        let m = WeatherModel::default();
        let locs = [
            "new-york",
            "tibet",
            "beijing",
            "new-south-wales",
            "united-kingdom",
            "quebec",
            "sao-paulo",
        ];
        let frac = m.drift_fraction(&locs);
        assert!(
            (0.28..=0.44).contains(&frac),
            "animal drift fraction {frac}"
        );
    }

    #[test]
    fn european_cities_drift_near_paper_rate() {
        // Paper: 29% of days in the cityscapes dataset have weather drift.
        let m = WeatherModel::default();
        let locs = ["hamburg", "zurich", "strasbourg", "cologne", "krefeld"];
        let frac = m.drift_fraction(&locs);
        assert!(
            (0.22..=0.38).contains(&frac),
            "cityscapes drift fraction {frac}"
        );
    }

    #[test]
    fn austral_locations_never_snow() {
        let m = WeatherModel::default();
        for d in SimDate::all() {
            assert_ne!(m.weather("new-south-wales", d), Weather::Snow);
        }
    }

    #[test]
    fn tibet_sees_snow() {
        let m = WeatherModel::default();
        let snowy = SimDate::all()
            .filter(|&d| m.weather("tibet", d) == Weather::Snow)
            .count();
        assert!(snowy > 15, "tibet snowy days {snowy}");
    }

    #[test]
    fn weather_names_match_drift_log_values() {
        assert_eq!(Weather::Clear.name(), "clear-day");
        assert_eq!(Weather::Snow.corruption(), Some(Corruption::Snow));
        assert_eq!(Weather::Clear.corruption(), None);
        assert!(Weather::Fog.is_drifting());
        assert!(!Weather::Clear.is_drifting());
    }
}
