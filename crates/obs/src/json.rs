//! Minimal JSON string rendering (no dependencies, write-only).
//!
//! The sinks emit records as hand-assembled JSON lines; this module holds
//! the one part that needs care — string escaping — plus a float formatter
//! that round-trips through standard JSON parsers.

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Bare integers like `3` are valid JSON numbers already.
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        write_str(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escaped("plain"), "\"plain\"");
        assert_eq!(escaped("a\"b"), "\"a\\\"b\"");
        assert_eq!(escaped("a\\b"), "\"a\\\\b\"");
        assert_eq!(escaped("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
        assert_eq!(escaped("unicode ✓"), "\"unicode ✓\"");
    }

    #[test]
    fn floats_render_as_json_numbers() {
        let mut out = String::new();
        write_f64(&mut out, 2.5);
        assert_eq!(out, "2.5");
        out.clear();
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, 3.0);
        assert_eq!(out, "3");
    }
}
