//! Scoped span timers assembling a hierarchical span tree per pipeline run.
//!
//! A [`span`] guard measures the wall-clock time between its creation and
//! drop. Spans nest through a thread-local stack: a span opened while
//! another is active becomes its child. Work fanned out across threads (the
//! `nazar_tensor::parallel` helpers) attaches to the spawning span
//! explicitly: capture [`current_span_id`] before the fan-out and open
//! worker spans with [`span_child`].
//!
//! Completed spans are streamed to the JSONL sink as they close and retained
//! in memory until [`crate::finish_run`] drains them into a span tree.
//!
//! Span taxonomy (DESIGN.md §7): `run` → `window` → { `detect`,
//! `log_ingest`, `analysis` → { `fim`, `reduction`, `counterfactual` },
//! `adapt` → { `adapt_job`, `adapt_clean` }, `deploy` }.

use crate::json;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the process.
    pub id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Stage name (from the span taxonomy).
    pub name: String,
    /// Free-form qualifier (e.g. a window index or cause label).
    pub detail: Option<String>,
    /// Start, in nanoseconds since the observability epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static SPANS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The id of the innermost active span on this thread, if any.
///
/// Capture this before fanning work out to other threads and pass it to
/// [`span_child`] so worker spans attach under the spawning span.
pub fn current_span_id() -> Option<u64> {
    if !crate::enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().copied())
}

/// An active span; records itself on drop. Not `Send` — a span must close
/// on the thread that opened it.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    detail: Option<String>,
    start: Instant,
    start_ns: u64,
}

fn open(name: &'static str, detail: Option<String>, parent: Option<u64>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            inner: None,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        inner: Some(ActiveSpan {
            id,
            parent,
            name,
            detail,
            start: Instant::now(),
            start_ns: crate::now_ns(),
        }),
        _not_send: PhantomData,
    }
}

/// Opens a span under the innermost active span on this thread.
pub fn span(name: &'static str) -> SpanGuard {
    let parent = current_span_id();
    open(name, None, parent)
}

/// Opens a span with a free-form detail string (window index, cause label).
///
/// The detail closure runs only when observability is enabled.
pub fn span_detail(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            inner: None,
            _not_send: PhantomData,
        };
    }
    let parent = current_span_id();
    open(name, Some(detail()), parent)
}

/// Opens a span under an explicit parent (for worker threads; pass the
/// [`current_span_id`] captured on the spawning thread).
pub fn span_child(name: &'static str, parent: Option<u64>) -> SpanGuard {
    open(name, None, parent)
}

impl SpanGuard {
    /// This span's id (`None` when observability is disabled).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.id)
    }

    /// Attaches a detail string after opening.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if let Some(active) = self.inner.as_mut() {
            active.detail = Some(detail.into());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                // Out-of-order drop (spans closed non-lexically): remove
                // wherever it is so the stack stays consistent.
                stack.retain(|&id| id != active.id);
            }
        });
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name.to_string(),
            detail: active.detail,
            start_ns: active.start_ns,
            dur_ns: u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        };
        stream(&record);
        crate::profile::record_close(active.name, record.dur_ns);
        collector()
            .lock()
            .expect("span collector poisoned")
            .push(record);
    }
}

/// Writes one span as a JSONL record.
fn stream(r: &SpanRecord) {
    let mut line = String::with_capacity(96);
    line.push_str("{\"type\":\"span\",\"id\":");
    line.push_str(&r.id.to_string());
    if let Some(p) = r.parent {
        line.push_str(",\"parent\":");
        line.push_str(&p.to_string());
    }
    line.push_str(",\"name\":");
    json::write_str(&mut line, &r.name);
    if let Some(d) = &r.detail {
        line.push_str(",\"detail\":");
        json::write_str(&mut line, d);
    }
    line.push_str(",\"start_ns\":");
    line.push_str(&r.start_ns.to_string());
    line.push_str(",\"dur_ns\":");
    line.push_str(&r.dur_ns.to_string());
    line.push('}');
    crate::sink::write_line(&line);
}

/// Takes all completed spans collected so far.
pub fn drain() -> Vec<SpanRecord> {
    std::mem::take(&mut *collector().lock().expect("span collector poisoned"))
}

/// Renders completed spans as a JSON forest, children nested under parents
/// and ordered by start time.
///
/// Spans whose parent is absent from `spans` (e.g. closed in an earlier
/// run) become roots.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].start_ns, spans[i].id));
    let present: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for &i in &order {
        match spans[i].parent {
            Some(p) if present.contains(&p) => children.entry(p).or_default().push(i),
            _ => roots.push(i),
        }
    }
    let mut out = String::from("[");
    for (j, &i) in roots.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        render_node(spans, &children, i, &mut out);
    }
    out.push(']');
    out
}

fn render_node(
    spans: &[SpanRecord],
    children: &std::collections::HashMap<u64, Vec<usize>>,
    i: usize,
    out: &mut String,
) {
    let s = &spans[i];
    out.push_str("{\"name\":");
    json::write_str(out, &s.name);
    if let Some(d) = &s.detail {
        out.push_str(",\"detail\":");
        json::write_str(out, d);
    }
    out.push_str(",\"start_ns\":");
    out.push_str(&s.start_ns.to_string());
    out.push_str(",\"dur_ns\":");
    out.push_str(&s.dur_ns.to_string());
    if let Some(kids) = children.get(&s.id) {
        out.push_str(",\"children\":[");
        for (j, &k) in kids.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            render_node(spans, children, k, out);
        }
        out.push(']');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn disabled_spans_are_free_and_anonymous() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::testing::disable();
        let s = span("nothing");
        assert!(s.id().is_none());
        assert!(current_span_id().is_none());
        drop(s);
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_follows_scope() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::testing::enable_memory_sink();
        let _ = drain();
        {
            let outer = span("window");
            let outer_id = outer.id().unwrap();
            {
                let inner = span("fim");
                assert_eq!(current_span_id(), inner.id());
            }
            assert_eq!(current_span_id(), Some(outer_id));
        }
        let spans = drain();
        assert_eq!(spans.len(), 2);
        let fim = spans.iter().find(|s| s.name == "fim").unwrap();
        let window = spans.iter().find(|s| s.name == "window").unwrap();
        assert_eq!(fim.parent, Some(window.id));
        assert!(window.dur_ns >= fim.dur_ns);
        crate::testing::disable();
    }

    #[test]
    fn explicit_parent_attaches_cross_thread_spans() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::testing::enable_memory_sink();
        let _ = drain();
        let parent = span("adapt");
        let parent_id = parent.id();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _job = span_child("adapt_job", parent_id);
            });
        });
        drop(parent);
        let spans = drain();
        let job = spans.iter().find(|s| s.name == "adapt_job").unwrap();
        assert_eq!(job.parent, parent_id);
        crate::testing::disable();
    }

    #[test]
    fn tree_nests_and_orphans_become_roots() {
        let records = vec![
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "fim".into(),
                detail: None,
                start_ns: 10,
                dur_ns: 5,
            },
            SpanRecord {
                id: 1,
                parent: None,
                name: "window".into(),
                detail: Some("w=0".into()),
                start_ns: 0,
                dur_ns: 100,
            },
            SpanRecord {
                id: 9,
                parent: Some(777),
                name: "orphan".into(),
                detail: None,
                start_ns: 50,
                dur_ns: 1,
            },
        ];
        let tree = render_tree(&records);
        assert!(tree.starts_with("[{\"name\":\"window\""));
        assert!(tree.contains("\"detail\":\"w=0\""));
        assert!(tree.contains("\"children\":[{\"name\":\"fim\""));
        assert!(tree.contains("{\"name\":\"orphan\""));
    }
}
