//! Virtual-time telemetry: delta-encoded registry snapshots in a bounded
//! ring buffer.
//!
//! A run's metrics are no longer a single end-of-run aggregate: the
//! [`TelemetryRecorder`] (one per process, behind [`snapshot`]) freezes the
//! whole metrics registry at *virtual-time* points — the fleet schedulers
//! call [`snapshot`] at every window-close event, the orchestrator after
//! each `window_complete`, and `nazar_bench::ObsRun` once more at run end —
//! and stores one delta-encoded record per point in a bounded ring.
//!
//! Determinism contract: records are stamped with the simulation's virtual
//! clock (µs), metrics are emitted in sorted `(name, labels)` order, and
//! **volatile** families (wall-clock `_seconds` histograms, thread-dependent
//! cache/fan-out counts — see [`crate::metrics`]) are excluded, so the
//! rendered series is bitwise identical across `NAZAR_NUM_THREADS`.
//! Volatile families still appear in `/metrics` and the final run report.
//!
//! Record schema (one JSON object per line, see README "Telemetry series"):
//!
//! ```text
//! {"type":"telemetry","seq":0,"t_us":86400000000,"trigger":"window_close",
//!  "metrics":[{"name":"...","labels":{...},"kind":"counter","delta":4,"total":4}, ...]}
//! {"type":"telemetry_summary","snapshots":3,"retained":3,"evicted":0,
//!  "last_t_us":...,"totals":[...]}
//! ```
//!
//! Only series that changed since the previous snapshot are listed; `total`
//! (and histogram `count`/`sum`) are cumulative since [`begin_run`]'s
//! baseline, so summing `delta` over all snapshots reproduces the summary's
//! `totals` exactly — and, for a fresh process, the final registry values.
//!
//! Ring capacity comes from `NAZAR_OBS_SERIES_CAP` (default 512). When the
//! ring overflows, the oldest records are dropped and counted in the
//! summary's `evicted` field; delta-consistency then holds only over the
//! retained suffix.
//!
//! Everything is a no-op while observability is disabled: [`snapshot`]
//! costs one relaxed atomic load, the same zero-cost contract as the rest
//! of the crate.

use crate::json;
use crate::metrics::{quantile_from_buckets, registry, MetricSnapshot, SnapshotValue};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, OnceLock};

/// Default ring capacity when `NAZAR_OBS_SERIES_CAP` is unset.
pub const DEFAULT_SERIES_CAP: usize = 512;

/// Identity of one metric series: family name plus sorted-in label set.
pub type SeriesKey = (String, Vec<(String, String)>);

/// The process-wide telemetry recorder state (see the module docs).
#[derive(Debug, Default)]
pub struct TelemetryRecorder {
    capacity: usize,
    ring: VecDeque<String>,
    evicted: u64,
    seq: u64,
    last_t_us: u64,
    started: bool,
    /// Registry values at [`begin_run`] — cancels cumulative registry
    /// state from earlier runs in the same process.
    baseline: BTreeMap<SeriesKey, SnapshotValue>,
    /// Registry values at the previous snapshot (delta encoding).
    prev: BTreeMap<SeriesKey, SnapshotValue>,
    /// Family names flagged volatile, excluded from rendered series.
    volatile_names: std::collections::BTreeSet<String>,
}

fn recorder() -> &'static Mutex<TelemetryRecorder> {
    static RECORDER: OnceLock<Mutex<TelemetryRecorder>> = OnceLock::new();
    RECORDER.get_or_init(|| Mutex::new(TelemetryRecorder::default()))
}

fn env_capacity() -> usize {
    std::env::var("NAZAR_OBS_SERIES_CAP")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_SERIES_CAP)
}

fn keyed(snap: Vec<MetricSnapshot>) -> BTreeMap<SeriesKey, SnapshotValue> {
    snap.into_iter()
        .map(|m| ((m.name, m.labels), m.value))
        .collect()
}

/// Starts (or restarts) a telemetry run: clears the ring and re-baselines
/// the recorder on the registry's current values, so deltas and totals are
/// scoped to this run even though the registry itself is cumulative.
/// Ring capacity is re-read from `NAZAR_OBS_SERIES_CAP`.
///
/// No-op while observability is disabled.
pub fn begin_run() {
    begin_run_with_capacity(env_capacity());
}

/// [`begin_run`] with an explicit ring capacity (tests, embedders).
pub fn begin_run_with_capacity(capacity: usize) {
    if !crate::enabled() {
        return;
    }
    let snap = registry().snapshot();
    let volatile_names = snap
        .iter()
        .filter(|m| m.volatile)
        .map(|m| m.name.clone())
        .collect();
    let base = keyed(snap);
    let mut rec = recorder().lock().expect("telemetry recorder poisoned");
    rec.capacity = capacity;
    rec.ring.clear();
    rec.evicted = 0;
    rec.seq = 0;
    rec.last_t_us = 0;
    rec.started = true;
    rec.prev = base.clone();
    rec.baseline = base;
    rec.volatile_names = volatile_names;
    drop(rec);
    crate::slo::reset_breaches();
    crate::profile::reset_live();
}

/// Takes one snapshot of the metrics registry at virtual time `t_us`,
/// evaluates any armed SLO rules against it, and appends a delta-encoded
/// record to the ring. `trigger` names the cause (`"window_close"`,
/// `"window_complete"`, `"run_end"`).
///
/// No-op while observability is disabled.
pub fn snapshot(t_us: u64, trigger: &str) {
    if !crate::enabled() {
        return;
    }
    let snap = registry().snapshot();
    let mut rec = recorder().lock().expect("telemetry recorder poisoned");
    if !rec.started {
        // No explicit begin_run (library embedders): baseline at zero so
        // the first snapshot carries the full cumulative values.
        rec.capacity = env_capacity();
        rec.started = true;
    }
    let dt_secs = (t_us.saturating_sub(rec.last_t_us)) as f64 / 1e6;
    crate::slo::evaluate_at(t_us, dt_secs, &snap, &rec.baseline, &rec.prev);

    let mut line = String::with_capacity(256);
    line.push_str("{\"type\":\"telemetry\",\"seq\":");
    line.push_str(&rec.seq.to_string());
    line.push_str(",\"t_us\":");
    line.push_str(&t_us.to_string());
    line.push_str(",\"trigger\":");
    json::write_str(&mut line, trigger);
    line.push_str(",\"metrics\":[");
    let mut first = true;
    // Sorted (name, labels) order — registration order can race across
    // worker threads, the sorted view cannot.
    let mut stable: Vec<&MetricSnapshot> = snap.iter().filter(|m| !m.volatile).collect();
    stable.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    for m in stable {
        let key = (m.name.clone(), m.labels.clone());
        let prev = rec.prev.get(&key);
        let base = rec.baseline.get(&key);
        let mut entry = String::new();
        if write_delta_entry(&mut entry, m, prev, base) {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&entry);
        }
    }
    line.push_str("]}");

    for m in snap.iter().filter(|m| m.volatile) {
        if !rec.volatile_names.contains(&m.name) {
            rec.volatile_names.insert(m.name.clone());
        }
    }
    rec.prev = keyed(snap);
    rec.last_t_us = rec.last_t_us.max(t_us);
    rec.seq += 1;
    if rec.capacity == 0 {
        rec.evicted += 1;
    } else {
        while rec.ring.len() >= rec.capacity {
            rec.ring.pop_front();
            rec.evicted += 1;
        }
        rec.ring.push_back(line);
    }
}

/// Takes the run's closing snapshot, stamped at the last snapshot's virtual
/// time (the clock does not advance after the final window).
pub fn snapshot_final() {
    if !crate::enabled() {
        return;
    }
    let t_us = recorder()
        .lock()
        .expect("telemetry recorder poisoned")
        .last_t_us;
    snapshot(t_us, "run_end");
}

/// Renders one changed series into `out`; returns `false` (emitting
/// nothing) when the series is unchanged since the previous snapshot.
fn write_delta_entry(
    out: &mut String,
    m: &MetricSnapshot,
    prev: Option<&SnapshotValue>,
    base: Option<&SnapshotValue>,
) -> bool {
    let prev_counter = |v: Option<&SnapshotValue>| match v {
        Some(SnapshotValue::Counter(c)) => *c,
        _ => 0,
    };
    let header = |out: &mut String| {
        out.push_str("{\"name\":");
        json::write_str(out, &m.name);
        if !m.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_str(out, k);
                out.push(':');
                json::write_str(out, v);
            }
            out.push('}');
        }
        out.push_str(",\"kind\":");
        json::write_str(out, m.kind.as_str());
    };
    match &m.value {
        SnapshotValue::Counter(cur) => {
            let p = prev_counter(prev);
            if *cur == p {
                return false;
            }
            header(out);
            out.push_str(",\"delta\":");
            out.push_str(&cur.saturating_sub(p).to_string());
            out.push_str(",\"total\":");
            out.push_str(&cur.saturating_sub(prev_counter(base)).to_string());
            out.push('}');
            true
        }
        SnapshotValue::Gauge(cur) => {
            let changed = match prev {
                Some(SnapshotValue::Gauge(p)) => p.to_bits() != cur.to_bits(),
                _ => true,
            };
            if !changed {
                return false;
            }
            header(out);
            out.push_str(",\"value\":");
            json::write_f64(out, *cur);
            out.push('}');
            true
        }
        SnapshotValue::Histogram {
            bounds,
            counts,
            sum,
            count,
        } => {
            let (_p_counts, p_sum, p_count) = hist_parts(prev, counts.len());
            if *count == p_count {
                return false;
            }
            let (b_counts, b_sum, b_count) = hist_parts(base, counts.len());
            let run_counts: Vec<u64> = counts
                .iter()
                .zip(&b_counts)
                .map(|(c, b)| c.saturating_sub(*b))
                .collect();
            header(out);
            out.push_str(",\"delta_count\":");
            out.push_str(&count.saturating_sub(p_count).to_string());
            out.push_str(",\"delta_sum\":");
            json::write_f64(out, sum - p_sum);
            out.push_str(",\"count\":");
            out.push_str(&count.saturating_sub(b_count).to_string());
            out.push_str(",\"sum\":");
            json::write_f64(out, sum - b_sum);
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                out.push_str(",\"");
                out.push_str(label);
                out.push_str("\":");
                json::write_f64(out, quantile_from_buckets(bounds, &run_counts, q));
            }
            out.push('}');
            true
        }
    }
}

fn hist_parts(v: Option<&SnapshotValue>, len: usize) -> (Vec<u64>, f64, u64) {
    match v {
        Some(SnapshotValue::Histogram {
            counts, sum, count, ..
        }) if counts.len() == len => (counts.clone(), *sum, *count),
        _ => (vec![0; len], 0.0, 0),
    }
}

fn summary_line(rec: &TelemetryRecorder) -> String {
    let mut line = String::from("{\"type\":\"telemetry_summary\",\"snapshots\":");
    line.push_str(&rec.seq.to_string());
    line.push_str(",\"retained\":");
    line.push_str(&rec.ring.len().to_string());
    line.push_str(",\"evicted\":");
    line.push_str(&rec.evicted.to_string());
    line.push_str(",\"last_t_us\":");
    line.push_str(&rec.last_t_us.to_string());
    line.push_str(",\"totals\":[");
    let mut first = true;
    // Run-scoped totals: values at the last snapshot minus the baseline,
    // stable families only — by construction equal to the sum of the
    // per-snapshot deltas.
    for ((name, labels), cur) in &rec.prev {
        if rec.volatile_names.contains(name) {
            continue;
        }
        let key = (name.clone(), labels.clone());
        let base = rec.baseline.get(&key);
        let mut entry = String::new();
        entry.push_str("{\"name\":");
        json::write_str(&mut entry, name);
        if !labels.is_empty() {
            entry.push_str(",\"labels\":{");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    entry.push(',');
                }
                json::write_str(&mut entry, k);
                entry.push(':');
                json::write_str(&mut entry, v);
            }
            entry.push('}');
        }
        match cur {
            SnapshotValue::Counter(c) => {
                let b = match base {
                    Some(SnapshotValue::Counter(b)) => *b,
                    _ => 0,
                };
                entry.push_str(",\"kind\":\"counter\",\"total\":");
                entry.push_str(&c.saturating_sub(b).to_string());
            }
            SnapshotValue::Gauge(g) => {
                entry.push_str(",\"kind\":\"gauge\",\"value\":");
                json::write_f64(&mut entry, *g);
            }
            SnapshotValue::Histogram {
                counts, sum, count, ..
            } => {
                let (_, b_sum, b_count) = hist_parts(base, counts.len());
                entry.push_str(",\"kind\":\"histogram\",\"count\":");
                entry.push_str(&count.saturating_sub(b_count).to_string());
                entry.push_str(",\"sum\":");
                json::write_f64(&mut entry, sum - b_sum);
            }
        }
        entry.push('}');
        if !first {
            line.push(',');
        }
        first = false;
        line.push_str(&entry);
    }
    line.push_str("]}");
    line
}

/// Renders the retained series as JSON lines — one `telemetry` record per
/// snapshot plus a closing `telemetry_summary` line. Empty string while
/// observability is disabled or before the first snapshot.
pub fn series_jsonl() -> String {
    if !crate::enabled() {
        return String::new();
    }
    let rec = recorder().lock().expect("telemetry recorder poisoned");
    if !rec.started {
        return String::new();
    }
    let mut out = String::new();
    for line in &rec.ring {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&summary_line(&rec));
    out.push('\n');
    out
}

/// Renders the retained series as one JSON array (the `/series.json` HTTP
/// route): snapshot records in order, summary record last.
pub fn series_json() -> String {
    let rec = recorder().lock().expect("telemetry recorder poisoned");
    let mut out = String::from("[");
    for line in &rec.ring {
        out.push_str(line);
        out.push(',');
    }
    out.push_str(&summary_line(&rec));
    out.push(']');
    out
}

/// Number of snapshots taken since [`begin_run`] (including evicted ones).
pub fn snapshot_count() -> u64 {
    recorder().lock().expect("telemetry recorder poisoned").seq
}

/// Number of records dropped by ring-buffer eviction.
pub fn evicted_count() -> u64 {
    recorder()
        .lock()
        .expect("telemetry recorder poisoned")
        .evicted
}

/// Number of records currently retained in the ring.
pub fn retained_count() -> usize {
    recorder()
        .lock()
        .expect("telemetry recorder poisoned")
        .ring
        .len()
}

/// The virtual timestamp of the most recent snapshot, µs.
pub fn last_t_us() -> u64 {
    recorder()
        .lock()
        .expect("telemetry recorder poisoned")
        .last_t_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    static C: crate::LazyCounter =
        crate::LazyCounter::new("nazar_test_telemetry_total", "telemetry unit counter", &[]);

    #[test]
    fn disabled_recorder_is_inert() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::testing::disable();
        begin_run();
        snapshot(1, "window_close");
        assert!(series_jsonl().is_empty());
    }

    #[test]
    fn deltas_and_totals_are_run_scoped() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::testing::enable_memory_sink();
        // Pollute the registry before the run: begin_run must cancel it.
        C.add(7);
        begin_run_with_capacity(16);
        C.add(2);
        snapshot(1_000_000, "window_close");
        C.add(3);
        snapshot(2_000_000, "window_close");
        snapshot_final();
        let text = series_jsonl();
        assert!(text.contains(
            "\"name\":\"nazar_test_telemetry_total\",\"kind\":\"counter\",\"delta\":2,\"total\":2"
        ));
        assert!(text.contains("\"delta\":3,\"total\":5"));
        // run_end snapshot carries no change for this counter.
        assert!(text.contains("\"trigger\":\"run_end\""));
        assert!(text.contains("\"snapshots\":3"));
        assert!(text
            .contains("\"name\":\"nazar_test_telemetry_total\",\"kind\":\"counter\",\"total\":5"));
        assert_eq!(last_t_us(), 2_000_000);
        crate::testing::disable();
    }

    #[test]
    fn ring_retention_edge_cases() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::testing::enable_memory_sink();
        // Capacity 0: every record evicted immediately.
        begin_run_with_capacity(0);
        snapshot(1, "a");
        snapshot(2, "b");
        assert_eq!(retained_count(), 0);
        assert_eq!(evicted_count(), 2);
        assert_eq!(snapshot_count(), 2);
        // Capacity 1: only the newest survives.
        begin_run_with_capacity(1);
        snapshot(1, "a");
        snapshot(2, "b");
        assert_eq!(retained_count(), 1);
        assert_eq!(evicted_count(), 1);
        assert!(series_jsonl().contains("\"trigger\":\"b\""));
        assert!(!series_jsonl().contains("\"trigger\":\"a\""));
        // Exact capacity: nothing evicted.
        begin_run_with_capacity(3);
        snapshot(1, "a");
        snapshot(2, "b");
        snapshot(3, "c");
        assert_eq!(retained_count(), 3);
        assert_eq!(evicted_count(), 0);
        crate::testing::disable();
    }
}
