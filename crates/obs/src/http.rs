//! Zero-dependency live HTTP exporter (`NAZAR_OBS_HTTP`).
//!
//! A single `std::net::TcpListener` thread serves read-only views of the
//! observability state, so a long `fleet_million` run can be watched from
//! `curl`/Prometheus while it executes:
//!
//! | route          | body                                              |
//! |----------------|---------------------------------------------------|
//! | `/metrics`     | Prometheus text exposition of the full registry   |
//! | `/series.json` | the telemetry ring as a JSON array                |
//! | `/spans.json`  | live per-span-name `(count, total_ns)` aggregate  |
//! | `/healthz`     | `ok` (liveness probe)                             |
//!
//! Everything served is assembled from atomics and mutex-guarded copies —
//! the exporter never mutates a metric, so it cannot perturb determinism.
//! It is off by default; set `NAZAR_OBS_HTTP=127.0.0.1:9898` (with
//! `NAZAR_OBS` enabled) to start it, or call [`start`] programmatically
//! (bind port 0 for an ephemeral test port).
//!
//! Requests are handled sequentially on the listener thread: the exporter
//! is a diagnostics endpoint for one or two human/scraper clients, not a
//! web server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running exporter; shuts the listener thread down on drop (see
/// [`HttpServer::detach`] for the fire-and-forget mode used by the
/// `NAZAR_OBS_HTTP` env path).
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Binds `bind` (e.g. `127.0.0.1:9898`, or port `0` for ephemeral) and
/// serves the observability routes from a background thread.
///
/// # Errors
///
/// Returns the bind/spawn error.
pub fn start(bind: &str) -> std::io::Result<HttpServer> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("nazar-obs-http".to_string())
        .spawn(move || serve_loop(&listener, &thread_stop))?;
    Ok(HttpServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Starts the exporter when `NAZAR_OBS_HTTP` names a bind address,
/// detaching it to run for the rest of the process. Called once from the
/// crate's state initialization, only when observability is enabled.
pub(crate) fn start_from_env() {
    let Ok(bind) = std::env::var("NAZAR_OBS_HTTP") else {
        return;
    };
    let bind = bind.trim().to_string();
    if bind.is_empty() {
        return;
    }
    match start(&bind) {
        Ok(server) => {
            eprintln!(
                "nazar-obs: http exporter serving /metrics on http://{}",
                server.local_addr()
            );
            server.detach();
        }
        Err(e) => eprintln!("nazar-obs: cannot start http exporter on {bind}: {e}"),
    }
}

impl HttpServer {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Leaves the listener thread running for the life of the process
    /// (the `NAZAR_OBS_HTTP` mode — there is no clean point to stop it).
    pub fn detach(mut self) {
        self.handle.take();
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(self) {
        // Drop runs the shutdown.
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

fn serve_loop(listener: &TcpListener, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else {
            continue;
        };
        let _ = handle_conn(&mut stream);
    }
}

fn handle_conn(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the request head (we ignore any body).
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let path = path.split('?').next().unwrap_or("/");
    let (status, ctype, body) = if method != "GET" && method != "HEAD" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        route(path)
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    if method != "HEAD" {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

fn route(path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::sink::render_prometheus(),
        ),
        "/series.json" => (
            "200 OK",
            "application/json",
            crate::telemetry::series_json(),
        ),
        "/spans.json" => ("200 OK", "application/json", crate::profile::live_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect exporter");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a head/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::testing::enable_memory_sink();
        static C: crate::LazyCounter =
            crate::LazyCounter::new("nazar_test_http_total", "http unit counter", &[]);
        C.add(3);
        let server = start("127.0.0.1:0").expect("ephemeral bind");
        let addr = server.local_addr();
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert_eq!(body, "ok\n");
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("nazar_test_http_total 3"));
        let (head, body) = get(addr, "/series.json");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.starts_with('[') && body.ends_with(']'));
        let (head, body) = get(addr, "/spans.json");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.starts_with('['));
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
        server.shutdown();
        crate::testing::disable();
    }
}
