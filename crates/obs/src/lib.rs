//! `nazar-obs`: zero-dependency observability for the Nazar pipeline.
//!
//! The paper's core claim is operational — continuously *monitoring* drifting
//! models in production — so the reproduction carries its own measurement
//! substrate. This crate provides, with no dependencies beyond `std`:
//!
//! * a process-wide **metrics registry** ([`metrics`]) of labeled counters,
//!   gauges and fixed-bucket histograms, all backed by atomics so hot paths
//!   (kernel workspaces, log ingest, version selection) can record without
//!   locks;
//! * **scoped span timers** ([`span()`]) that assemble a hierarchical span tree
//!   per pipeline run — device inference → detection → log ingest → FIM →
//!   set reduction → counterfactual analysis → per-cause adaptation →
//!   version distribution;
//! * **structured events** ([`event_fields`] / the [`event!`] macro), the
//!   replacement for ad-hoc `println!` diagnostics in library crates;
//! * two **sinks** ([`sink`]): a JSONL event/span writer and a Prometheus
//!   text-format snapshot, selected by the `NAZAR_OBS` environment variable.
//!
//! # The `NAZAR_OBS` environment variable
//!
//! Observability is **off by default**: every instrumentation call first
//! checks [`enabled`], which is a single relaxed atomic load, so the
//! instrumented hot paths cost nothing measurable when monitoring is not
//! requested (asserted by `crates/obs/tests` and the PR's bench gates).
//!
//! Syntax — one or more comma-separated directives:
//!
//! ```text
//! NAZAR_OBS=jsonl:/tmp/run.jsonl            # stream events/spans as JSON lines
//! NAZAR_OBS=prom:/tmp/metrics.prom          # write a Prometheus text snapshot on flush
//! NAZAR_OBS=jsonl:run.jsonl,prom:m.prom     # both
//! NAZAR_OBS=mem                             # collect in memory only (tests, ad-hoc probes)
//! ```
//!
//! Unset, empty, `0` or `off` disable everything.
//!
//! # Example
//!
//! ```
//! nazar_obs::testing::enable_memory_sink();
//! static REQS: nazar_obs::LazyCounter =
//!     nazar_obs::LazyCounter::new("nazar_example_requests_total", "Requests served", &[]);
//! {
//!     let _span = nazar_obs::span("window");
//!     let _inner = nazar_obs::span("fim");
//!     REQS.inc();
//! }
//! let report = nazar_obs::finish_run("example");
//! assert!(report.contains("\"name\":\"window\""));
//! assert!(nazar_obs::prometheus_snapshot().contains("nazar_example_requests_total 1"));
//! # nazar_obs::testing::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod slo;
pub mod span;
pub mod telemetry;

pub use metrics::{
    duration_buckets, pow2_buckets, pow2_buckets_wide, quantile_from_buckets, registry, Counter,
    Gauge, Histogram, LazyCounter, LazyGauge, LazyHistogram, MetricKind, MetricSnapshot, Registry,
};
pub use sink::{flush, prometheus_snapshot};
pub use span::{current_span_id, span, span_child, span_detail, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide observability state, initialized once.
struct State {
    enabled: AtomicBool,
    epoch: Instant,
}

static STATE: OnceLock<State> = OnceLock::new();

fn state() -> &'static State {
    STATE.get_or_init(|| {
        let spec = std::env::var("NAZAR_OBS").unwrap_or_default();
        let config = sink::SinkConfig::parse(&spec);
        let on = config.is_some();
        if let Some(config) = config {
            sink::install(config);
        }
        let state = State {
            enabled: AtomicBool::new(on),
            epoch: Instant::now(),
        };
        if on {
            if let Ok(rules) = std::env::var("NAZAR_OBS_SLO") {
                match slo::parse_rules(&rules) {
                    Ok(rules) if !rules.is_empty() => slo::arm(rules),
                    Ok(_) => {}
                    Err(e) => eprintln!("nazar-obs: ignoring NAZAR_OBS_SLO: {e}"),
                }
            }
            http::start_from_env();
        }
        state
    })
}

/// Whether observability is active.
///
/// This is the no-op fast path: one lazy-init check plus one relaxed atomic
/// load. Every instrumentation helper in this crate calls it first and
/// returns immediately when it is `false`.
#[inline]
pub fn enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Nanoseconds since the observability epoch (first touch of the crate).
///
/// Timestamps in emitted records are relative to this epoch, which keeps the
/// output deterministic in shape (monotonic, starting near zero) without
/// needing a wall clock.
pub fn now_ns() -> u64 {
    u64::try_from(state().epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Emits one structured event with pre-rendered field values.
///
/// Prefer the [`event!`] macro, which skips field rendering entirely when
/// observability is disabled.
pub fn event_fields(name: &str, fields: &[(&str, String)]) {
    if !enabled() {
        return;
    }
    let mut line = String::with_capacity(64);
    line.push_str("{\"type\":\"event\",\"ts_ns\":");
    line.push_str(&now_ns().to_string());
    line.push_str(",\"name\":");
    json::write_str(&mut line, name);
    if !fields.is_empty() {
        line.push_str(",\"fields\":{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            json::write_str(&mut line, k);
            line.push(':');
            json::write_str(&mut line, v);
        }
        line.push('}');
    }
    line.push('}');
    sink::write_line(&line);
}

/// Emits a structured event: `event!("deploy", cause = label, devices = n)`.
///
/// Field values are rendered with `to_string()` only when observability is
/// enabled, so call sites are free on the disabled path.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::event_fields($name, &[$((stringify!($key), $value.to_string())),*]);
        }
    };
}

/// Finishes one pipeline run: drains the collected spans, assembles the span
/// tree, snapshots the metrics registry, and emits a `run_report` record.
///
/// The report is appended to the JSONL sink (when configured), the
/// Prometheus snapshot is written to the `prom:` sink (when configured), and
/// the rendered report JSON is returned for programmatic use. Returns an
/// empty string when observability is disabled.
pub fn finish_run(name: &str) -> String {
    finish_run_full(name).report
}

/// Everything [`finish_run_full`] assembles from one pipeline run.
#[derive(Debug, Default, Clone)]
pub struct RunOutput {
    /// The `run_report` JSONL line (what [`finish_run`] returns).
    pub report: String,
    /// Collapsed-stack flamegraph text ([`profile::folded`]).
    pub folded: String,
    /// Span names ranked by self time ([`profile::top_self`], top 10).
    pub top_self: Vec<profile::SelfTime>,
}

/// [`finish_run`] plus the span-profile aggregates: the drained spans are
/// also rendered as collapsed flamegraph stacks and a top-self-time table,
/// so callers (the bench `ObsRun` guard) can write profiling artifacts
/// without re-draining. Returns an empty [`RunOutput`] when observability
/// is disabled.
pub fn finish_run_full(name: &str) -> RunOutput {
    if !enabled() {
        return RunOutput::default();
    }
    let spans = span::drain();
    let folded = profile::folded(&spans);
    let top_self = profile::top_self(&spans, 10);
    let tree = span::render_tree(&spans);
    let metrics = registry().snapshot_json();
    let prometheus = sink::render_prometheus();
    let mut line = String::with_capacity(256);
    line.push_str("{\"type\":\"run_report\",\"ts_ns\":");
    line.push_str(&now_ns().to_string());
    line.push_str(",\"name\":");
    json::write_str(&mut line, name);
    line.push_str(",\"spans\":");
    line.push_str(&tree);
    line.push_str(",\"metrics\":");
    line.push_str(&metrics);
    line.push_str(",\"prometheus\":");
    json::write_str(&mut line, &prometheus);
    line.push('}');
    sink::write_line(&line);
    sink::flush();
    RunOutput {
        report: line,
        folded,
        top_self,
    }
}

/// Test and embedding hooks: enable/disable observability programmatically.
///
/// Global observability state is shared across the process; tests that use
/// these helpers must serialize themselves (see `crates/obs/tests`).
pub mod testing {
    use super::*;

    /// Enables observability with in-memory collection only (no files).
    pub fn enable_memory_sink() {
        sink::install(sink::SinkConfig::default());
        state().enabled.store(true, Ordering::SeqCst);
    }

    /// Enables observability streaming JSONL records to `path`.
    pub fn enable_jsonl_sink(path: &std::path::Path) {
        sink::install(sink::SinkConfig {
            jsonl: Some(path.to_path_buf()),
            prom: None,
        });
        state().enabled.store(true, Ordering::SeqCst);
    }

    /// Disables observability and clears collected spans (metrics persist;
    /// they are cumulative by design).
    pub fn disable() {
        state().enabled.store(false, Ordering::SeqCst);
        let _ = span::drain();
        sink::uninstall();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle the global enabled flag.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_event_is_noop() {
        let _guard = TEST_LOCK.lock().unwrap();
        testing::disable();
        assert!(!enabled());
        event!("ignored", value = 1);
        event_fields("also-ignored", &[]);
        assert!(finish_run("nothing").is_empty());
    }

    #[test]
    fn event_macro_renders_fields() {
        let _guard = TEST_LOCK.lock().unwrap();
        testing::enable_memory_sink();
        event!("deploy", cause = "{weather=snow}", devices = 12);
        let lines = sink::memory_lines();
        let line = lines
            .iter()
            .find(|l| l.contains("\"name\":\"deploy\""))
            .expect("event recorded");
        assert!(line.contains("\"cause\":\"{weather=snow}\""));
        assert!(line.contains("\"devices\":\"12\""));
        testing::disable();
    }

    #[test]
    fn finish_run_emits_tree_metrics_and_prometheus() {
        let _guard = TEST_LOCK.lock().unwrap();
        testing::enable_memory_sink();
        {
            let _outer = span("window");
            let _inner = span("fim");
        }
        let report = finish_run("unit");
        assert!(report.contains("\"type\":\"run_report\""));
        assert!(report.contains("\"name\":\"window\""));
        assert!(report.contains("\"name\":\"fim\""));
        assert!(report.contains("\"prometheus\":"));
        testing::disable();
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
