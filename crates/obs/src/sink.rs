//! Output sinks: JSONL record streaming and Prometheus text snapshots.
//!
//! The JSONL sink appends one JSON object per line — `event`, `span` and
//! `run_report` records — to the file named by `NAZAR_OBS=jsonl:<path>`.
//! The Prometheus sink writes the full registry in text exposition format
//! to `NAZAR_OBS=prom:<path>` on every [`flush`]. With `NAZAR_OBS=mem`,
//! records are retained in memory (tests, ad-hoc probes).

use crate::metrics::{registry, SnapshotValue};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Parsed `NAZAR_OBS` directives.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SinkConfig {
    /// Target of `jsonl:<path>`, if given.
    pub jsonl: Option<PathBuf>,
    /// Target of `prom:<path>`, if given.
    pub prom: Option<PathBuf>,
}

impl SinkConfig {
    /// Parses the `NAZAR_OBS` value. `None` means observability stays
    /// disabled; `Some(default)` (no paths) means in-memory collection.
    pub fn parse(spec: &str) -> Option<SinkConfig> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "0" || spec.eq_ignore_ascii_case("off") {
            return None;
        }
        let mut config = SinkConfig::default();
        for directive in spec.split(',') {
            let directive = directive.trim();
            if let Some(path) = directive.strip_prefix("jsonl:") {
                config.jsonl = Some(PathBuf::from(path));
            } else if let Some(path) = directive.strip_prefix("prom:") {
                config.prom = Some(PathBuf::from(path));
            }
            // `mem`, `1`, `on` and anything unrecognized just enable
            // in-memory collection.
        }
        Some(config)
    }
}

struct Sink {
    jsonl: Option<BufWriter<File>>,
    prom: Option<PathBuf>,
    /// Line retention for `mem` mode (only when no JSONL file is set, so
    /// long streaming runs don't accumulate unbounded memory).
    memory: Vec<String>,
}

fn sink_slot() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Installs sinks from a parsed config (replacing any previous sinks).
pub(crate) fn install(config: SinkConfig) {
    let jsonl = config.jsonl.and_then(|path| {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match File::create(&path) {
            Ok(f) => Some(BufWriter::new(f)),
            Err(e) => {
                eprintln!("nazar-obs: cannot open jsonl sink {}: {e}", path.display());
                None
            }
        }
    });
    *sink_slot().lock().expect("sink poisoned") = Some(Sink {
        jsonl,
        prom: config.prom,
        memory: Vec::new(),
    });
}

/// Removes all sinks (test teardown).
pub(crate) fn uninstall() {
    *sink_slot().lock().expect("sink poisoned") = None;
}

/// Appends one pre-rendered JSON line to the active sink.
pub(crate) fn write_line(line: &str) {
    let mut slot = sink_slot().lock().expect("sink poisoned");
    let Some(sink) = slot.as_mut() else {
        return;
    };
    match sink.jsonl.as_mut() {
        Some(w) => {
            let _ = writeln!(w, "{line}");
        }
        None => sink.memory.push(line.to_string()),
    }
}

/// Lines retained by the in-memory sink (empty when a JSONL file is set).
pub fn memory_lines() -> Vec<String> {
    sink_slot()
        .lock()
        .expect("sink poisoned")
        .as_ref()
        .map(|s| s.memory.clone())
        .unwrap_or_default()
}

/// Flushes the JSONL sink and (re)writes the Prometheus snapshot file.
pub fn flush() {
    let prom_path = {
        let mut slot = sink_slot().lock().expect("sink poisoned");
        let Some(sink) = slot.as_mut() else {
            return;
        };
        if let Some(w) = sink.jsonl.as_mut() {
            let _ = w.flush();
        }
        sink.prom.clone()
    };
    // Render outside the sink lock: the registry has its own lock.
    if let Some(path) = prom_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(&path, render_prometheus());
    }
}

fn write_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        write_label_value(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        write_label_value(out, v);
        out.push('"');
    }
    out.push('}');
}

/// Renders every registered metric in Prometheus text exposition format.
pub fn render_prometheus() -> String {
    let snapshot = registry().snapshot();
    let mut out = String::new();
    for (i, m) in snapshot.iter().enumerate() {
        let new_family = i == 0 || snapshot[i - 1].name != m.name;
        if new_family {
            out.push_str("# HELP ");
            out.push_str(&m.name);
            out.push(' ');
            out.push_str(&m.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&m.name);
            out.push(' ');
            out.push_str(m.kind.as_str());
            out.push('\n');
        }
        match &m.value {
            SnapshotValue::Counter(v) => {
                out.push_str(&m.name);
                write_labels(&mut out, &m.labels, None);
                out.push(' ');
                out.push_str(&v.to_string());
                out.push('\n');
            }
            SnapshotValue::Gauge(v) => {
                out.push_str(&m.name);
                write_labels(&mut out, &m.labels, None);
                out.push(' ');
                out.push_str(&format!("{v}"));
                out.push('\n');
            }
            SnapshotValue::Histogram {
                bounds,
                counts,
                sum,
                count,
            } => {
                let mut cumulative = 0u64;
                for (i, c) in counts.iter().enumerate() {
                    cumulative += c;
                    let le = if i < bounds.len() {
                        format!("{}", bounds[i])
                    } else {
                        "+Inf".to_string()
                    };
                    out.push_str(&m.name);
                    out.push_str("_bucket");
                    write_labels(&mut out, &m.labels, Some(("le", &le)));
                    out.push(' ');
                    out.push_str(&cumulative.to_string());
                    out.push('\n');
                }
                out.push_str(&m.name);
                out.push_str("_sum");
                write_labels(&mut out, &m.labels, None);
                out.push(' ');
                out.push_str(&format!("{sum}"));
                out.push('\n');
                out.push_str(&m.name);
                out.push_str("_count");
                write_labels(&mut out, &m.labels, None);
                out.push(' ');
                out.push_str(&count.to_string());
                out.push('\n');
                // Summary-style quantile estimates, interpolated from the
                // fixed buckets (advisory; scrapers that recompute
                // histogram_quantile can ignore them).
                for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                    let v = crate::metrics::quantile_from_buckets(bounds, counts, q);
                    out.push_str(&m.name);
                    write_labels(&mut out, &m.labels, Some(("quantile", label)));
                    out.push(' ');
                    out.push_str(&format!("{v}"));
                    out.push('\n');
                }
            }
        }
    }
    out
}

/// Alias of [`render_prometheus`] under the name used by the public API.
pub fn prometheus_snapshot() -> String {
    render_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn parse_recognizes_directives() {
        assert_eq!(SinkConfig::parse(""), None);
        assert_eq!(SinkConfig::parse("0"), None);
        assert_eq!(SinkConfig::parse("off"), None);
        let both = SinkConfig::parse("jsonl:/tmp/a.jsonl, prom:/tmp/b.prom").unwrap();
        assert_eq!(
            both.jsonl.as_deref(),
            Some(std::path::Path::new("/tmp/a.jsonl"))
        );
        assert_eq!(
            both.prom.as_deref(),
            Some(std::path::Path::new("/tmp/b.prom"))
        );
        let mem = SinkConfig::parse("mem").unwrap();
        assert_eq!(mem, SinkConfig::default());
    }

    #[test]
    fn prometheus_rendering_has_help_type_and_cumulative_buckets() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::testing::enable_memory_sink();
        let h = registry().histogram(
            "nazar_test_sink_seconds",
            "Sink test timings",
            &[("stage", "x")],
            &[0.1, 1.0],
        );
        h.observe(0.05);
        h.observe(0.5);
        h.observe(10.0);
        let text = render_prometheus();
        assert!(text.contains("# HELP nazar_test_sink_seconds Sink test timings"));
        assert!(text.contains("# TYPE nazar_test_sink_seconds histogram"));
        assert!(text.contains("nazar_test_sink_seconds_bucket{stage=\"x\",le=\"0.1\"} 1"));
        assert!(text.contains("nazar_test_sink_seconds_bucket{stage=\"x\",le=\"1\"} 2"));
        assert!(text.contains("nazar_test_sink_seconds_bucket{stage=\"x\",le=\"+Inf\"} 3"));
        assert!(text.contains("nazar_test_sink_seconds_count{stage=\"x\"} 3"));
        assert!(text.contains("nazar_test_sink_seconds{stage=\"x\",quantile=\"0.5\"}"));
        assert!(text.contains("nazar_test_sink_seconds{stage=\"x\",quantile=\"0.99\"}"));
        crate::testing::disable();
    }

    #[test]
    fn jsonl_sink_writes_lines_to_disk() {
        let _guard = TEST_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("nazar-obs-sink-test");
        let path = dir.join("out.jsonl");
        crate::testing::enable_jsonl_sink(&path);
        crate::event_fields("hello", &[("k", "v".to_string())]);
        flush();
        let text = std::fs::read_to_string(&path).expect("sink file written");
        assert!(text.contains("\"name\":\"hello\""));
        crate::testing::disable();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
