//! Declarative SLOs evaluated at every telemetry snapshot.
//!
//! Rules arrive through `NAZAR_OBS_SLO` (or [`arm`] programmatically), are
//! checked by [`crate::telemetry::snapshot`] against the metrics registry,
//! and every violation is recorded as a [`Breach`], emitted as an
//! `slo_breach` event, and counted in `nazar_obs_slo_breaches_total`.
//! `nazar_bench::ObsRun` turns accumulated breaches into a non-zero exit
//! code at the end of a run, which is how CI gates on them.
//!
//! # Rule syntax
//!
//! Rules are `;`-separated; each rule is `expr op threshold`:
//!
//! ```text
//! expr      := atom [ '/' atom ]
//! atom      := func '(' metric ')' | metric
//! func      := p50 | p95 | p99 | rate
//! metric    := name [ '{' key '=' value { ',' key '=' value } '}' ]
//! op        := <= | < | >= | >
//! threshold := floating-point literal
//! ```
//!
//! A rule states the *requirement*; it breaches when the comparison does
//! not hold. Examples (README "SLO rules" has the full reference):
//!
//! ```text
//! nazar_cloud_quarantined_uploads_total / nazar_device_uploads_total <= 0.25
//! p99(nazar_net_retries_total) <= 64
//! rate(nazar_log_ingest_rows_total) >= 10
//! nazar_registry_selects_total{result=miss} <= 100
//! ```
//!
//! Semantics, all deterministic on the virtual clock:
//!
//! * a bare `metric` sums every series whose labels are a superset of the
//!   selector's, as **run-scoped** values (counter/histogram-count deltas
//!   from the run baseline; gauges read raw);
//! * `p50/p95/p99(h)` interpolate quantiles from the run-scoped bucket
//!   deltas of histogram `h` (series merged);
//! * `rate(m)` is the per-virtual-second delta since the previous
//!   snapshot; it is skipped when no virtual time has elapsed;
//! * missing metrics evaluate to 0, and `0/0` ratios evaluate to 0.

use crate::metrics::{quantile_from_buckets, MetricKind, MetricSnapshot, SnapshotValue};
use crate::telemetry::SeriesKey;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

static BREACH_COUNT: crate::LazyCounter = crate::LazyCounter::new_volatile(
    "nazar_obs_slo_breaches_total",
    "SLO rule violations detected at telemetry snapshots",
    &[],
);

/// Selects metric series by family name and a label subset.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSel {
    /// Family name.
    pub name: String,
    /// Labels a series must carry (subset match; empty matches all).
    pub labels: Vec<(String, String)>,
}

/// One operand of a rule expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// Run-scoped value of the selected series, summed.
    Value(MetricSel),
    /// Quantile estimate over the selected histogram's run-scoped buckets.
    Quantile(f64, MetricSel),
    /// Per-virtual-second delta since the previous snapshot.
    Rate(MetricSel),
}

/// Comparison operator of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl Cmp {
    fn holds(self, v: f64, t: f64) -> bool {
        match self {
            Cmp::Le => v <= t,
            Cmp::Lt => v < t,
            Cmp::Ge => v >= t,
            Cmp::Gt => v > t,
        }
    }
}

/// One parsed SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The rule's source text (used in breach reports).
    pub text: String,
    /// Numerator atom.
    pub num: Atom,
    /// Optional denominator atom (ratio rules).
    pub den: Option<Atom>,
    /// Required comparison.
    pub cmp: Cmp,
    /// Threshold the comparison is made against.
    pub threshold: f64,
}

/// One recorded SLO violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Breach {
    /// Source text of the violated rule.
    pub rule: String,
    /// Virtual time of the violating snapshot, µs.
    pub t_us: u64,
    /// The expression's value at that snapshot.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

#[derive(Debug, Default)]
struct SloState {
    rules: Vec<Rule>,
    breaches: Vec<Breach>,
}

fn state() -> &'static Mutex<SloState> {
    static STATE: OnceLock<Mutex<SloState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(SloState::default()))
}

/// Parses a `;`-separated rule list (the `NAZAR_OBS_SLO` format).
///
/// # Errors
///
/// Returns a description of the first malformed rule.
pub fn parse_rules(spec: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        rules.push(parse_rule(part)?);
    }
    Ok(rules)
}

fn parse_rule(text: &str) -> Result<Rule, String> {
    let (cmp, op) = if let Some(i) = text.find("<=") {
        (Cmp::Le, (i, 2))
    } else if let Some(i) = text.find(">=") {
        (Cmp::Ge, (i, 2))
    } else if let Some(i) = text.find('<') {
        (Cmp::Lt, (i, 1))
    } else if let Some(i) = text.find('>') {
        (Cmp::Gt, (i, 1))
    } else {
        return Err(format!("rule `{text}` has no comparison operator"));
    };
    let expr = text[..op.0].trim();
    let threshold: f64 = text[op.0 + op.1..]
        .trim()
        .parse()
        .map_err(|_| format!("rule `{text}` has a non-numeric threshold"))?;
    // Split the expression on a '/' outside braces (label values keep `/`).
    let mut depth = 0usize;
    let mut slash = None;
    for (i, c) in expr.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            '/' if depth == 0 => {
                if slash.is_some() {
                    return Err(format!("rule `{text}` has more than one `/`"));
                }
                slash = Some(i);
            }
            _ => {}
        }
    }
    let (num, den) = match slash {
        Some(i) => (
            parse_atom(expr[..i].trim(), text)?,
            Some(parse_atom(expr[i + 1..].trim(), text)?),
        ),
        None => (parse_atom(expr, text)?, None),
    };
    Ok(Rule {
        text: text.to_string(),
        num,
        den,
        cmp,
        threshold,
    })
}

fn parse_atom(atom: &str, rule: &str) -> Result<Atom, String> {
    for (prefix, q) in [("p50(", 0.5), ("p95(", 0.95), ("p99(", 0.99)] {
        if let Some(inner) = atom.strip_prefix(prefix) {
            let inner = inner
                .strip_suffix(')')
                .ok_or_else(|| format!("rule `{rule}`: unclosed `{prefix}`"))?;
            return Ok(Atom::Quantile(q, parse_sel(inner.trim(), rule)?));
        }
    }
    if let Some(inner) = atom.strip_prefix("rate(") {
        let inner = inner
            .strip_suffix(')')
            .ok_or_else(|| format!("rule `{rule}`: unclosed `rate(`"))?;
        return Ok(Atom::Rate(parse_sel(inner.trim(), rule)?));
    }
    Ok(Atom::Value(parse_sel(atom, rule)?))
}

fn parse_sel(sel: &str, rule: &str) -> Result<MetricSel, String> {
    let (name, labels) = match sel.find('{') {
        Some(i) => {
            let body = sel[i..]
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .ok_or_else(|| format!("rule `{rule}`: malformed labels in `{sel}`"))?;
            let mut labels = Vec::new();
            for pair in body.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("rule `{rule}`: label `{pair}` is not key=value"))?;
                labels.push((k.trim().to_string(), v.trim().trim_matches('"').to_string()));
            }
            (&sel[..i], labels)
        }
        None => (sel, Vec::new()),
    };
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("rule `{rule}`: bad metric name `{name}`"));
    }
    Ok(MetricSel {
        name: name.to_string(),
        labels,
    })
}

/// Installs `rules` as the armed SLO set and clears prior breaches.
pub fn arm(rules: Vec<Rule>) {
    let mut s = state().lock().expect("slo state poisoned");
    s.rules = rules;
    s.breaches.clear();
}

/// Removes all rules and breaches.
pub fn disarm() {
    arm(Vec::new());
}

/// Whether any SLO rules are armed.
pub fn armed() -> bool {
    !state().lock().expect("slo state poisoned").rules.is_empty()
}

/// All breaches recorded since the rules were armed (or the run began).
pub fn breaches() -> Vec<Breach> {
    state().lock().expect("slo state poisoned").breaches.clone()
}

/// Clears recorded breaches, keeping the armed rules (run start).
pub(crate) fn reset_breaches() {
    state().lock().expect("slo state poisoned").breaches.clear();
}

fn sel_matches(sel: &MetricSel, m: &MetricSnapshot) -> bool {
    m.name == sel.name
        && sel
            .labels
            .iter()
            .all(|want| m.labels.iter().any(|have| have == want))
}

fn scalar(v: &SnapshotValue) -> f64 {
    match v {
        SnapshotValue::Counter(c) => *c as f64,
        SnapshotValue::Gauge(g) => *g,
        SnapshotValue::Histogram { count, .. } => *count as f64,
    }
}

fn lookup<'a>(
    map: &'a BTreeMap<SeriesKey, SnapshotValue>,
    m: &MetricSnapshot,
) -> Option<&'a SnapshotValue> {
    // Borrow-free key probe would need a lookup pair; clone is fine at
    // snapshot frequency (a handful per window).
    map.get(&(m.name.clone(), m.labels.clone()))
}

fn eval_atom(
    atom: &Atom,
    cur: &[MetricSnapshot],
    base: &BTreeMap<SeriesKey, SnapshotValue>,
    prev: &BTreeMap<SeriesKey, SnapshotValue>,
    dt_secs: f64,
) -> Option<f64> {
    match atom {
        Atom::Value(sel) => {
            let mut total = 0.0;
            for m in cur.iter().filter(|m| sel_matches(sel, m)) {
                total += match m.kind {
                    MetricKind::Gauge => scalar(&m.value),
                    _ => scalar(&m.value) - lookup(base, m).map(scalar).unwrap_or(0.0),
                };
            }
            Some(total)
        }
        Atom::Quantile(q, sel) => {
            let mut merged_bounds: Vec<f64> = Vec::new();
            let mut merged: Vec<u64> = Vec::new();
            for m in cur.iter().filter(|m| sel_matches(sel, m)) {
                let SnapshotValue::Histogram { bounds, counts, .. } = &m.value else {
                    continue;
                };
                let (b_counts, _, _) = match lookup(base, m) {
                    Some(SnapshotValue::Histogram {
                        counts: bc,
                        sum,
                        count,
                        ..
                    }) if bc.len() == counts.len() => (bc.clone(), *sum, *count),
                    _ => (vec![0; counts.len()], 0.0, 0),
                };
                if merged.is_empty() {
                    merged_bounds = bounds.clone();
                    merged = vec![0; counts.len()];
                }
                if merged.len() != counts.len() {
                    continue; // mismatched bucket layouts are not mergeable
                }
                for (acc, (c, b)) in merged.iter_mut().zip(counts.iter().zip(&b_counts)) {
                    *acc += c.saturating_sub(*b);
                }
            }
            Some(quantile_from_buckets(&merged_bounds, &merged, *q))
        }
        Atom::Rate(sel) => {
            if dt_secs <= 0.0 {
                return None;
            }
            let mut delta = 0.0;
            for m in cur.iter().filter(|m| sel_matches(sel, m)) {
                delta += scalar(&m.value) - lookup(prev, m).map(scalar).unwrap_or(0.0);
            }
            Some(delta / dt_secs)
        }
    }
}

/// Evaluates one rule against a snapshot; `None` means "not applicable at
/// this snapshot" (e.g. a rate with no elapsed virtual time).
pub fn eval_rule(
    rule: &Rule,
    cur: &[MetricSnapshot],
    base: &BTreeMap<SeriesKey, SnapshotValue>,
    prev: &BTreeMap<SeriesKey, SnapshotValue>,
    dt_secs: f64,
) -> Option<f64> {
    let num = eval_atom(&rule.num, cur, base, prev, dt_secs)?;
    let value = match &rule.den {
        None => num,
        Some(den) => {
            let den = eval_atom(den, cur, base, prev, dt_secs)?;
            let ratio = num / den;
            if ratio.is_nan() {
                0.0
            } else {
                ratio
            }
        }
    };
    Some(value)
}

/// Checks every armed rule against the snapshot `cur` taken at `t_us`;
/// violations are recorded, counted and emitted as `slo_breach` events.
/// Called by [`crate::telemetry::snapshot`].
pub(crate) fn evaluate_at(
    t_us: u64,
    dt_secs: f64,
    cur: &[MetricSnapshot],
    base: &BTreeMap<SeriesKey, SnapshotValue>,
    prev: &BTreeMap<SeriesKey, SnapshotValue>,
) {
    let rules = state().lock().expect("slo state poisoned").rules.clone();
    if rules.is_empty() {
        return;
    }
    let mut new = Vec::new();
    for rule in &rules {
        let Some(value) = eval_rule(rule, cur, base, prev, dt_secs) else {
            continue;
        };
        if !rule.cmp.holds(value, rule.threshold) {
            new.push(Breach {
                rule: rule.text.clone(),
                t_us,
                value,
                threshold: rule.threshold,
            });
        }
    }
    if new.is_empty() {
        return;
    }
    for b in &new {
        BREACH_COUNT.inc();
        crate::event_fields(
            "slo_breach",
            &[
                ("rule", b.rule.clone()),
                ("t_us", b.t_us.to_string()),
                ("value", format!("{}", b.value)),
                ("threshold", format!("{}", b.threshold)),
            ],
        );
    }
    state()
        .lock()
        .expect("slo state poisoned")
        .breaches
        .extend(new);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn parses_the_documented_grammar() {
        let rules = parse_rules(
            "a_total / b_total <= 0.25; p99(h_bytes) < 100; \
             rate(c_total) >= 10 ; x_total{op=scan, keys=\"2\"} > 0",
        )
        .expect("valid rules");
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].cmp, Cmp::Le);
        assert!(rules[0].den.is_some());
        assert_eq!(
            rules[1].num,
            Atom::Quantile(
                0.99,
                MetricSel {
                    name: "h_bytes".into(),
                    labels: vec![]
                }
            )
        );
        assert!(matches!(rules[2].num, Atom::Rate(_)));
        assert_eq!(
            rules[3].num,
            Atom::Value(MetricSel {
                name: "x_total".into(),
                labels: vec![("op".into(), "scan".into()), ("keys".into(), "2".into())],
            })
        );
        assert!(parse_rules("a_total").is_err());
        assert!(parse_rules("a_total <= many").is_err());
        assert!(parse_rules("p95(a_total <= 1").is_err());
        assert!(parse_rules("bad name <= 1").is_err());
    }

    fn counter_snap(name: &str, labels: &[(&str, &str)], v: u64) -> MetricSnapshot {
        MetricSnapshot {
            name: name.to_string(),
            help: String::new(),
            kind: MetricKind::Counter,
            volatile: false,
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value: SnapshotValue::Counter(v),
        }
    }

    #[test]
    fn evaluates_ratios_rates_and_label_subsets() {
        let cur = vec![
            counter_snap("q_total", &[], 30),
            counter_snap("u_total", &[("dir", "up")], 100),
            counter_snap("u_total", &[("dir", "down")], 100),
        ];
        let base = BTreeMap::new();
        let mut prev = BTreeMap::new();
        prev.insert(
            ("q_total".to_string(), Vec::new()),
            SnapshotValue::Counter(10),
        );
        let rules =
            parse_rules("q_total / u_total{dir=up} <= 0.25; rate(q_total) <= 1").expect("rules");
        let v = eval_rule(&rules[0], &cur, &base, &prev, 10.0).expect("applicable");
        assert!((v - 0.3).abs() < 1e-12);
        assert!(
            !rules[0].cmp.holds(v, rules[0].threshold),
            "0.3 breaches <= 0.25"
        );
        // rate: (30-10)/10s = 2/s, breaches <= 1.
        let r = eval_rule(&rules[1], &cur, &base, &prev, 10.0).expect("applicable");
        assert!((r - 2.0).abs() < 1e-12);
        // No elapsed virtual time: rate rules are skipped.
        assert!(eval_rule(&rules[1], &cur, &base, &prev, 0.0).is_none());
        // Missing metrics and 0/0 evaluate to 0.
        let empty = parse_rules("nope_total / also_nope_total <= 0.5").expect("rule");
        assert_eq!(eval_rule(&empty[0], &cur, &base, &prev, 1.0), Some(0.0));
    }

    #[test]
    fn armed_rules_record_breaches_at_snapshots() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::testing::enable_memory_sink();
        arm(parse_rules("nazar_test_slo_total <= 2").expect("rule"));
        static C: crate::LazyCounter =
            crate::LazyCounter::new("nazar_test_slo_total", "slo unit counter", &[]);
        crate::telemetry::begin_run_with_capacity(8);
        C.add(1);
        crate::telemetry::snapshot(1_000_000, "window_close");
        assert!(breaches().is_empty(), "1 <= 2 holds");
        C.add(5);
        crate::telemetry::snapshot(2_000_000, "window_close");
        let b = breaches();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].t_us, 2_000_000);
        assert!((b[0].value - 6.0).abs() < 1e-12);
        let lines = crate::sink::memory_lines();
        assert!(lines.iter().any(|l| l.contains("\"name\":\"slo_breach\"")));
        disarm();
        crate::testing::disable();
    }
}
