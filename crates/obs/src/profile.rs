//! Span profiling: collapsed-stack (folded) flamegraph output, top-k
//! self-time tables, and a live per-name aggregate for the HTTP exporter.
//!
//! The span tree `crates/obs/src/span.rs` collects per run is aggregated
//! two ways at run end (`nazar_bench::ObsRun` → [`crate::finish_run_full`]):
//!
//! * [`folded`] renders `parent;child;leaf self_ns` lines — the collapsed
//!   stack format `flamegraph.pl` / speedscope / inferno consume directly;
//! * [`top_self`] ranks span names by **self time** (duration minus the
//!   duration of direct children), the quantity that actually identifies
//!   hot stages rather than just deep ones.
//!
//! While the run executes, every span close also folds into a per-name
//! `(count, total_ns)` aggregate that `/spans.json` serves live; it is
//! reset by [`crate::telemetry::begin_run`]. Both rendered forms are
//! sorted, so output order is deterministic even though timings are not.

use crate::json;
use crate::span::SpanRecord;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, OnceLock};

/// Aggregated self-time of one span name across a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTime {
    /// Span name (stage).
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total self time (duration minus direct children), ns.
    pub self_ns: u64,
    /// Total inclusive duration, ns.
    pub total_ns: u64,
}

/// Computes each span's self time: its duration minus the summed durations
/// of its direct children (clamped at zero for clock skew).
fn self_times(spans: &[SpanRecord]) -> Vec<u64> {
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_default() += s.dur_ns;
        }
    }
    spans
        .iter()
        .map(|s| {
            s.dur_ns
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0))
        })
        .collect()
}

/// Renders the spans as collapsed stacks: one `a;b;c self_ns` line per
/// distinct root-to-span path, aggregated and sorted by path. Spans whose
/// parent is absent root their own stack.
pub fn folded(spans: &[SpanRecord]) -> String {
    let idx: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let selfs = self_times(spans);
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let mut path = vec![s.name.as_str()];
        let mut cursor = s.parent;
        // The parent chain is acyclic by construction (ids are unique and
        // assigned before children open); the hop cap is belt-and-braces.
        for _ in 0..spans.len() {
            let Some(p) = cursor.and_then(|p| idx.get(&p)) else {
                break;
            };
            path.push(spans[*p].name.as_str());
            cursor = spans[*p].parent;
        }
        path.reverse();
        *agg.entry(path.join(";")).or_default() += selfs[i];
    }
    let mut out = String::new();
    for (path, ns) in &agg {
        out.push_str(path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// The `k` span names with the largest total self time, descending (name
/// breaks ties, for deterministic order).
pub fn top_self(spans: &[SpanRecord], k: usize) -> Vec<SelfTime> {
    let selfs = self_times(spans);
    let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let e = agg.entry(s.name.as_str()).or_default();
        e.0 += 1;
        e.1 += selfs[i];
        e.2 += s.dur_ns;
    }
    let mut rows: Vec<SelfTime> = agg
        .into_iter()
        .map(|(name, (count, self_ns, total_ns))| SelfTime {
            name: name.to_string(),
            count,
            self_ns,
            total_ns,
        })
        .collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    rows.truncate(k);
    rows
}

fn live() -> &'static Mutex<BTreeMap<&'static str, (u64, u64)>> {
    static LIVE: OnceLock<Mutex<BTreeMap<&'static str, (u64, u64)>>> = OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Folds one closed span into the live per-name aggregate (called from the
/// span guard's drop; the guard only carries state while observability is
/// enabled, so this adds nothing to the disabled path).
pub(crate) fn record_close(name: &'static str, dur_ns: u64) {
    let mut live = live().lock().expect("live span aggregate poisoned");
    let e = live.entry(name).or_insert((0, 0));
    e.0 += 1;
    e.1 += dur_ns;
}

/// Clears the live aggregate (run start).
pub(crate) fn reset_live() {
    live().lock().expect("live span aggregate poisoned").clear();
}

/// The live aggregate as a JSON array (the `/spans.json` HTTP route):
/// `[{"name":...,"count":...,"total_ns":...}, ...]`, sorted by name.
pub fn live_json() -> String {
    let live = live().lock().expect("live span aggregate poisoned");
    let mut out = String::from("[");
    for (i, (name, (count, total_ns))) in live.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_str(&mut out, name);
        out.push_str(",\"count\":");
        out.push_str(&count.to_string());
        out.push_str(",\"total_ns\":");
        out.push_str(&total_ns.to_string());
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            detail: None,
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn folded_aggregates_paths_with_self_time() {
        let spans = vec![
            rec(1, None, "run", 0, 100),
            rec(2, Some(1), "window", 0, 60),
            rec(3, Some(2), "detect", 0, 25),
            rec(4, Some(2), "detect", 30, 15),
            rec(5, Some(999), "orphan", 50, 5),
        ];
        let text = folded(&spans);
        // run self = 100 - 60; window self = 60 - 40; detects aggregate.
        assert_eq!(
            text,
            "orphan 5\nrun 40\nrun;window 20\nrun;window;detect 40\n"
        );
    }

    #[test]
    fn top_self_ranks_by_self_time() {
        let spans = vec![
            rec(1, None, "run", 0, 100),
            rec(2, Some(1), "window", 0, 90),
            rec(3, Some(2), "detect", 0, 80),
        ];
        let top = top_self(&spans, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "detect");
        assert_eq!(top[0].self_ns, 80);
        assert_eq!(top[0].total_ns, 80);
        assert_eq!(top[1].name, "run");
        assert_eq!(top[1].self_ns, 10);
    }

    #[test]
    fn live_aggregate_renders_sorted_json() {
        reset_live();
        record_close("window", 10);
        record_close("detect", 5);
        record_close("detect", 7);
        assert_eq!(
            live_json(),
            "[{\"name\":\"detect\",\"count\":2,\"total_ns\":12},{\"name\":\"window\",\"count\":1,\"total_ns\":10}]"
        );
        reset_live();
        assert_eq!(live_json(), "[]");
    }
}
