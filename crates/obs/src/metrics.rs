//! Thread-safe metrics: labeled counters, gauges and fixed-bucket
//! histograms, all backed by atomics.
//!
//! Metric *families* are keyed by name; each family holds one series per
//! distinct label set. Hot paths hold an `Arc` to their series (cached in a
//! [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] static at the call site),
//! so recording is lock-free: the registry mutex is only taken on first use
//! of a series and when snapshotting.
//!
//! Naming scheme (see DESIGN.md §7): `nazar_<crate>_<noun>[_<unit>|_total]`,
//! snake case, with Prometheus conventions — `_total` for counters, base
//! units (seconds, bytes) for histograms. Labels are closed sets (`op`,
//! `stage`, `phase`, `method`, `keys`), never raw attribute values, to keep
//! cardinality bounded.

use crate::json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` value (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` to the gauge (compare-and-swap loop).
    pub fn add(&self, v: f64) {
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed, ascending bucket bounds.
///
/// Observations count into the first bucket whose upper bound is `>=` the
/// value (Prometheus `le` semantics), plus an implicit `+Inf` bucket, a
/// running sum and a count.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One per bound, plus the trailing `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Records a duration in seconds since `start`.
    pub fn observe_since(&self, start: std::time::Instant) {
        self.observe(start.elapsed().as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts (non-cumulative), `+Inf` last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the fixed buckets —
    /// see [`quantile_from_buckets`] for the interpolation contract.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.bounds, &self.bucket_counts(), q)
    }
}

/// Estimates a quantile from fixed histogram buckets, Prometheus-style:
/// linear interpolation inside the bucket holding the target rank, with the
/// first bucket's lower edge taken as 0 and the `+Inf` bucket clamped to the
/// last finite bound. An empty histogram yields `0.0`.
///
/// The estimate is a pure function of the (deterministic) bucket counts, so
/// it is itself deterministic — unlike a sampled quantile.
pub fn quantile_from_buckets(bounds: &[f64], counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum as f64 >= rank && c > 0 {
            if i >= bounds.len() {
                // Target falls in +Inf: the best finite estimate is the
                // largest bound (or 0 for a bound-less histogram).
                return bounds.last().copied().unwrap_or(0.0);
            }
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let upper = bounds[i];
            let prev_cum = (cum - c) as f64;
            let frac = ((rank - prev_cum) / c as f64).clamp(0.0, 1.0);
            return lower + (upper - lower) * frac;
        }
    }
    bounds.last().copied().unwrap_or(0.0)
}

/// Default duration buckets in seconds: 1µs to 60s, roughly geometric.
pub fn duration_buckets() -> &'static [f64] {
    &[
        1e-6, 1e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1.0, 2.5, 10.0, 60.0,
    ]
}

/// Power-of-two buckets for small cardinalities (fan-out widths, level
/// sizes): 1 to 1024.
pub fn pow2_buckets() -> &'static [f64] {
    &[
        1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    ]
}

/// Wide power-of-two buckets for million-scale cardinalities (event-queue
/// depths, per-batch event counts): 1 to 2^24, every other power of two.
pub fn pow2_buckets_wide() -> &'static [f64] {
    &[
        1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
        4194304.0, 16777216.0,
    ]
}

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Distribution over fixed buckets.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    /// Wall-clock- or thread-count-dependent: excluded from the
    /// deterministic telemetry series (see [`crate::telemetry`]).
    volatile: bool,
    /// Label sets in first-seen order, each with its series.
    series: Vec<(Vec<(String, String)>, Series)>,
}

/// The value of one series at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: bounds, per-bucket counts (`+Inf` last), sum, count.
    Histogram {
        /// Bucket upper bounds.
        bounds: Vec<f64>,
        /// Non-cumulative per-bucket counts, `+Inf` last.
        counts: Vec<u64>,
        /// Sum of observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// One series of one family, frozen at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Family name.
    pub name: String,
    /// Family help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Whether the family is volatile (wall-clock- or thread-dependent);
    /// volatile series are excluded from the deterministic telemetry
    /// series but stay in `/metrics` and run reports.
    pub volatile: bool,
    /// The series' label set.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: SnapshotValue,
}

/// The process-wide metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    families: Vec<Family>,
    index: HashMap<String, usize>,
}

fn labels_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    #[allow(clippy::too_many_arguments)]
    fn family_series<T, F, G>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        volatile: bool,
        labels: &[(&str, &str)],
        make: F,
        as_t: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> Series,
        G: Fn(&Series) -> Option<Arc<T>>,
    {
        // Wall-clock timings are volatile by construction: the `_seconds`
        // suffix (DESIGN.md §7 naming) marks every duration histogram.
        let volatile = volatile || name.ends_with("_seconds");
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let idx = match inner.index.get(name) {
            Some(&i) => i,
            None => {
                let i = inner.families.len();
                inner.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    volatile,
                    series: Vec::new(),
                });
                inner.index.insert(name.to_string(), i);
                i
            }
        };
        let family = &mut inner.families[idx];
        family.volatile |= volatile;
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {:?}, requested as {kind:?}",
            family.kind
        );
        let key = labels_key(labels);
        if let Some((_, s)) = family.series.iter().find(|(k, _)| *k == key) {
            return as_t(s).expect("kind checked above");
        }
        let series = make();
        let out = as_t(&series).expect("just constructed with matching kind");
        family.series.push((key, series));
        out
    }

    /// The counter series for `(name, labels)`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter_with(name, help, false, labels)
    }

    /// [`Registry::counter`] with an explicit volatility flag; mark series
    /// whose values depend on thread count or the wall clock so the
    /// deterministic telemetry series can skip them.
    pub fn counter_with(
        &self,
        name: &str,
        help: &str,
        volatile: bool,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        self.family_series(
            name,
            help,
            MetricKind::Counter,
            volatile,
            labels,
            || Series::Counter(Arc::new(Counter::default())),
            |s| match s {
                Series::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The gauge series for `(name, labels)`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge_with(name, help, false, labels)
    }

    /// [`Registry::gauge`] with an explicit volatility flag.
    pub fn gauge_with(
        &self,
        name: &str,
        help: &str,
        volatile: bool,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        self.family_series(
            name,
            help,
            MetricKind::Gauge,
            volatile,
            labels,
            || Series::Gauge(Arc::new(Gauge::default())),
            |s| match s {
                Series::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The histogram series for `(name, labels)`, created on first use with
    /// the given bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind, or if
    /// `bounds` is not strictly ascending.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.histogram_with(name, help, false, labels, bounds)
    }

    /// [`Registry::histogram`] with an explicit volatility flag (`_seconds`
    /// names are volatile regardless).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        volatile: bool,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.family_series(
            name,
            help,
            MetricKind::Histogram,
            volatile,
            labels,
            || Series::Histogram(Arc::new(Histogram::new(bounds))),
            |s| match s {
                Series::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Freezes every series of every family.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = Vec::new();
        for family in &inner.families {
            for (labels, series) in &family.series {
                let value = match series {
                    Series::Counter(c) => SnapshotValue::Counter(c.get()),
                    Series::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Series::Histogram(h) => SnapshotValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        counts: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                };
                out.push(MetricSnapshot {
                    name: family.name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    volatile: family.volatile,
                    labels: labels.clone(),
                    value,
                });
            }
        }
        out
    }

    /// Renders the snapshot as a JSON array (for run reports).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("[");
        for (i, m) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_str(&mut out, &m.name);
            out.push_str(",\"kind\":");
            json::write_str(&mut out, m.kind.as_str());
            if !m.labels.is_empty() {
                out.push_str(",\"labels\":{");
                for (j, (k, v)) in m.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    json::write_str(&mut out, k);
                    out.push(':');
                    json::write_str(&mut out, v);
                }
                out.push('}');
            }
            match &m.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(",\"value\":");
                    out.push_str(&v.to_string());
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(",\"value\":");
                    json::write_f64(&mut out, *v);
                }
                SnapshotValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    out.push_str(",\"bounds\":[");
                    for (j, b) in bounds.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        json::write_f64(&mut out, *b);
                    }
                    out.push_str("],\"counts\":[");
                    for (j, c) in counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&c.to_string());
                    }
                    out.push_str("],\"sum\":");
                    json::write_f64(&mut out, *sum);
                    out.push_str(",\"count\":");
                    out.push_str(&count.to_string());
                    for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                        out.push_str(",\"");
                        out.push_str(label);
                        out.push_str("\":");
                        json::write_f64(&mut out, quantile_from_buckets(bounds, counts, q));
                    }
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// A call-site static caching one counter series.
///
/// `inc`/`add` are no-ops while observability is disabled; the series is
/// registered on first enabled use.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    help: &'static str,
    labels: &'static [(&'static str, &'static str)],
    volatile: bool,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Declares a counter series (registered lazily).
    pub const fn new(
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Self {
        LazyCounter {
            name,
            help,
            labels,
            volatile: false,
            cell: OnceLock::new(),
        }
    }

    /// Declares a volatile counter series — one whose value depends on
    /// thread scheduling (cache hit/miss splits, fan-out widths), excluded
    /// from the deterministic telemetry series.
    pub const fn new_volatile(
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Self {
        LazyCounter {
            name,
            help,
            labels,
            volatile: true,
            cell: OnceLock::new(),
        }
    }

    fn series(&self) -> &Arc<Counter> {
        self.cell.get_or_init(|| {
            registry().counter_with(self.name, self.help, self.volatile, self.labels)
        })
    }

    /// Adds `n` when observability is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.series().add(n);
    }

    /// Adds one when observability is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A call-site static caching one gauge series.
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    help: &'static str,
    labels: &'static [(&'static str, &'static str)],
    volatile: bool,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Declares a gauge series (registered lazily).
    pub const fn new(
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Self {
        LazyGauge {
            name,
            help,
            labels,
            volatile: false,
            cell: OnceLock::new(),
        }
    }

    /// Declares a volatile gauge series (host- or wall-clock-dependent,
    /// e.g. peak RSS), excluded from the deterministic telemetry series.
    pub const fn new_volatile(
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Self {
        LazyGauge {
            name,
            help,
            labels,
            volatile: true,
            cell: OnceLock::new(),
        }
    }

    /// Sets the gauge when observability is enabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| registry().gauge_with(self.name, self.help, self.volatile, self.labels))
            .set(v);
    }
}

/// A call-site static caching one histogram series.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    help: &'static str,
    labels: &'static [(&'static str, &'static str)],
    volatile: bool,
    bounds: fn() -> &'static [f64],
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Declares a histogram series (registered lazily) over `bounds`.
    pub const fn new(
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
        bounds: fn() -> &'static [f64],
    ) -> Self {
        LazyHistogram {
            name,
            help,
            labels,
            volatile: false,
            bounds,
            cell: OnceLock::new(),
        }
    }

    /// Declares a volatile histogram series (thread-count-dependent, e.g.
    /// fan-out widths), excluded from the deterministic telemetry series.
    pub const fn new_volatile(
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
        bounds: fn() -> &'static [f64],
    ) -> Self {
        LazyHistogram {
            name,
            help,
            labels,
            volatile: true,
            bounds,
            cell: OnceLock::new(),
        }
    }

    /// Records `v` when observability is enabled.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| {
                registry().histogram_with(
                    self.name,
                    self.help,
                    self.volatile,
                    self.labels,
                    (self.bounds)(),
                )
            })
            .observe(v);
    }

    /// Records the seconds elapsed since `start` when observability is
    /// enabled.
    #[inline]
    pub fn observe_since(&self, start: std::time::Instant) {
        if !crate::enabled() {
            return;
        }
        self.observe(start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(2.5);
        g.add(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0 (le semantics)
        h.observe(5.0); // bucket 1
        h.observe(100.0); // +Inf
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_reuses_series_and_checks_kinds() {
        let r = Registry::default();
        let a = r.counter("x_total", "help", &[("op", "a")]);
        let b = r.counter("x_total", "help", &[("op", "a")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = r.counter("x_total", "help", &[("op", "b")]);
        assert_eq!(other.get(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].labels, vec![("op".to_string(), "a".to_string())]);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn registry_panics_on_kind_mismatch() {
        let r = Registry::default();
        let _ = r.counter("y_total", "help", &[]);
        let _ = r.gauge("y_total", "help", &[]);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // Empty histogram: all quantiles are 0.
        assert_eq!(h.quantile(0.5), 0.0);
        for _ in 0..10 {
            h.observe(1.5); // bucket (1, 2]
        }
        // All mass in one bucket: the median sits mid-bucket.
        assert!((h.quantile(0.5) - 1.5).abs() < 1e-9);
        assert!((h.quantile(1.0) - 2.0).abs() < 1e-9);
        // Mass in +Inf clamps to the last finite bound.
        for _ in 0..90 {
            h.observe(100.0);
        }
        assert!((h.quantile(0.99) - 4.0).abs() < 1e-9);
        // First bucket interpolates down from lower edge 0.
        let low = Histogram::new(&[10.0]);
        low.observe(3.0);
        low.observe(3.0);
        assert!((low.quantile(0.5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn volatile_flags_propagate_to_snapshots() {
        let r = Registry::default();
        r.counter("stable_total", "help", &[]).inc();
        r.counter_with("shaky_total", "help", true, &[]).inc();
        // `_seconds` histograms are volatile regardless of the flag.
        r.histogram("auto_seconds", "help", &[], &[1.0])
            .observe(0.5);
        let volatile: Vec<(String, bool)> = r
            .snapshot()
            .into_iter()
            .map(|m| (m.name, m.volatile))
            .collect();
        assert_eq!(
            volatile,
            vec![
                ("stable_total".to_string(), false),
                ("shaky_total".to_string(), true),
                ("auto_seconds".to_string(), true),
            ]
        );
    }

    #[test]
    fn snapshot_json_is_valid_shape() {
        let r = Registry::default();
        r.counter("c_total", "counts", &[]).add(3);
        r.histogram("h_seconds", "times", &[("stage", "fim")], &[0.1, 1.0])
            .observe(0.5);
        let json = r.snapshot_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"name\":\"c_total\""));
        assert!(json.contains("\"value\":3"));
        assert!(json.contains("\"labels\":{\"stage\":\"fim\"}"));
        assert!(json.contains("\"counts\":[0,1,0]"));
    }
}
