//! The drift log: schema, columnar store and mini query engine.
//!
//! In the paper the drift log is an Amazon Aurora table; every on-device
//! inference appends one row of metadata (time, device id, weather,
//! location, ...) plus the boolean drift-detection result, and the
//! root-cause analysis Lambda runs SQL `COUNT` aggregations over it
//! (DESIGN.md substitution S7).
//!
//! This crate reproduces exactly that interface:
//!
//! * [`DriftLogEntry`] — one row: timestamp, attribute values, drift flag.
//! * [`DriftLog`] — a columnar, dictionary-encoded store over a fixed
//!   attribute schema, supporting the counting queries frequent-itemset
//!   mining needs (`COUNT(*) WHERE attr1 = v1 AND attr2 = v2 [AND drift]`),
//!   windowed scans, and drift-mask overrides for counterfactual analysis.
//!
//! # Example
//!
//! ```
//! use nazar_log::{Attribute, DriftLog, DriftLogEntry};
//!
//! let mut log = DriftLog::new(&["weather", "location"]);
//! log.push(DriftLogEntry::new(0, &[("weather", "snow"), ("location", "nyc")], true))?;
//! log.push(DriftLogEntry::new(1, &[("weather", "clear"), ("location", "nyc")], false))?;
//! let snow = Attribute::new("weather", "snow");
//! let counts = log.count_matching(&[snow], None)?;
//! assert_eq!((counts.occurrences, counts.drifted), (1, 1));
//! # Ok::<(), nazar_log::LogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entry;
pub mod probe;
mod store;

pub use entry::{Attribute, DriftLogEntry};
pub use store::{DriftLog, IngestReport, LogError, MatchCounts, Result, DEFAULT_SEGMENT_ROWS};

/// Builds the example drift log of Table 2 in the paper (two devices, New
/// York and Helsinki, five entries, snow as the true root cause and one
/// false-positive detection).
///
/// Used by the root-cause-analysis tests and the `table3` harness, which
/// must reproduce the paper's FIM metrics *exactly*.
pub fn paper_example_log() -> DriftLog {
    let mut log = DriftLog::new(&["weather", "location", "device_id"]);
    let rows: [(u64, &str, &str, &str, bool); 5] = [
        (
            6 * 3600 + 2 * 60 + 1,
            "clear-day",
            "helsinki",
            "android_42",
            false,
        ),
        (
            6 * 3600 + 2 * 60 + 23,
            "clear-day",
            "new-york",
            "android_21",
            false,
        ),
        (
            6 * 3600 + 4 * 60 + 55,
            "clear-day",
            "new-york",
            "android_21",
            true,
        ),
        (
            8 * 3600 + 3 * 60 + 32,
            "snow",
            "new-york",
            "android_21",
            true,
        ),
        (
            11 * 3600 + 5 * 60 + 1,
            "snow",
            "helsinki",
            "android_42",
            true,
        ),
    ];
    for (ts, weather, location, device, drift) in rows {
        log.push(DriftLogEntry::new(
            ts,
            &[
                ("weather", weather),
                ("location", location),
                ("device_id", device),
            ],
            drift,
        ))
        .expect("schema matches");
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_has_five_rows_three_drifted() {
        let log = paper_example_log();
        assert_eq!(log.num_rows(), 5);
        assert_eq!(log.num_drifted(), 3);
    }
}
