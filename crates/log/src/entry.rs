//! Drift-log rows and attribute values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `(key, value)` attribute, e.g. `weather = snow`.
///
/// Attributes are the vocabulary of root causes: a root cause is a *set* of
/// attributes that frequently co-occurs with detected drift.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute key (column name), e.g. `"weather"`.
    pub key: String,
    /// Attribute value, e.g. `"snow"`.
    pub value: String,
}

impl Attribute {
    /// Creates an attribute from key and value.
    pub fn new(key: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            key: key.into(),
            value: value.into(),
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.key, self.value)
    }
}

/// One drift-log row: what a device reports to the cloud after an inference.
///
/// Contains only metadata and the boolean detection result — never the input
/// itself (inputs are sampled separately for adaptation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftLogEntry {
    /// Event timestamp (opaque; larger is later).
    pub timestamp: u64,
    /// Attribute values, one per schema column.
    pub attrs: Vec<Attribute>,
    /// The on-device drift detector's verdict for this inference.
    pub drift: bool,
}

impl DriftLogEntry {
    /// Creates an entry from `(key, value)` pairs.
    pub fn new(timestamp: u64, attrs: &[(&str, &str)], drift: bool) -> Self {
        DriftLogEntry {
            timestamp,
            attrs: attrs.iter().map(|(k, v)| Attribute::new(*k, *v)).collect(),
            drift,
        }
    }

    /// Looks up the value of an attribute key, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.key == key)
            .map(|a| a.value.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_display() {
        assert_eq!(
            Attribute::new("weather", "snow").to_string(),
            "weather=snow"
        );
    }

    #[test]
    fn entry_attr_lookup() {
        let e = DriftLogEntry::new(5, &[("weather", "fog"), ("location", "quebec")], true);
        assert_eq!(e.attr("weather"), Some("fog"));
        assert_eq!(e.attr("missing"), None);
        assert!(e.drift);
    }

    #[test]
    fn attributes_order_deterministically() {
        let mut attrs = [
            Attribute::new("b", "2"),
            Attribute::new("a", "9"),
            Attribute::new("a", "1"),
        ];
        attrs.sort();
        assert_eq!(attrs[0], Attribute::new("a", "1"));
        assert_eq!(attrs[2], Attribute::new("b", "2"));
    }
}
