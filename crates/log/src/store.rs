//! Columnar drift-log store with dictionary encoding.

use crate::entry::{Attribute, DriftLogEntry};
use nazar_obs::LazyCounter;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

static INGEST_ROWS: LazyCounter = LazyCounter::new(
    "nazar_log_ingest_rows_total",
    "Rows appended to the drift log",
    &[],
);
static INGEST_DRIFTED: LazyCounter = LazyCounter::new(
    "nazar_log_ingest_drifted_total",
    "Drift-flagged rows appended to the drift log",
    &[],
);
static QUERY_COUNT: LazyCounter = LazyCounter::new(
    "nazar_log_queries_total",
    "Counting/scan queries served by the drift log",
    &[("op", "count_matching")],
);
static QUERY_ROWS: LazyCounter = LazyCounter::new(
    "nazar_log_queries_total",
    "Counting/scan queries served by the drift log",
    &[("op", "rows_matching")],
);
static QUERY_DISTINCT: LazyCounter = LazyCounter::new(
    "nazar_log_queries_total",
    "Counting/scan queries served by the drift log",
    &[("op", "distinct_values")],
);

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LogError>;

/// Errors raised by drift-log operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// An entry's attributes do not cover the log's schema.
    SchemaMismatch {
        /// The missing or unexpected key.
        key: String,
    },
    /// A query referenced an attribute key absent from the schema.
    UnknownKey {
        /// The offending key.
        key: String,
    },
    /// A row index was out of range.
    RowOutOfRange {
        /// The offending row.
        row: usize,
        /// Number of rows in the log.
        rows: usize,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::SchemaMismatch { key } => {
                write!(f, "entry does not match log schema at key `{key}`")
            }
            LogError::UnknownKey { key } => write!(f, "unknown attribute key `{key}`"),
            LogError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for log of {rows} rows")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// Result of a counting query over the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchCounts {
    /// Rows whose attributes contain the queried set.
    pub occurrences: usize,
    /// Of those, rows flagged as drift.
    pub drifted: usize,
}

/// Per-column dictionary of attribute values.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Dict {
    values: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Dict {
    fn intern(&mut self, value: &str) -> u32 {
        if self.index.is_empty() && !self.values.is_empty() {
            self.rebuild_index();
        }
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(value.to_string());
        self.index.insert(value.to_string(), id);
        id
    }

    fn lookup(&self, value: &str) -> Option<u32> {
        if self.index.is_empty() && !self.values.is_empty() {
            // Deserialized dictionaries fall back to a linear probe.
            return self
                .values
                .iter()
                .position(|v| v == value)
                .map(|i| i as u32);
        }
        self.index.get(value).copied()
    }

    fn rebuild_index(&mut self) {
        self.index = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
    }
}

/// The global drift log: one dictionary-encoded column per attribute key,
/// plus the drift flags and timestamps (DESIGN.md substitution S7 for the
/// paper's Aurora table).
///
/// All counting queries are single linear scans over `u32` columns, which is
/// what makes the root-cause analysis runtime linear in the number of rows
/// (the property measured in Fig. 9d).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftLog {
    schema: Vec<String>,
    columns: Vec<Vec<u32>>,
    dicts: Vec<Dict>,
    drift: Vec<bool>,
    timestamps: Vec<u64>,
}

impl DriftLog {
    /// Creates an empty log over the given attribute keys.
    pub fn new(schema: &[&str]) -> Self {
        DriftLog {
            schema: schema.iter().map(|s| s.to_string()).collect(),
            columns: vec![Vec::new(); schema.len()],
            dicts: vec![Dict::default(); schema.len()],
            drift: Vec::new(),
            timestamps: Vec::new(),
        }
    }

    /// The attribute keys (column names).
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.drift.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.drift.is_empty()
    }

    /// Number of rows flagged as drift.
    pub fn num_drifted(&self) -> usize {
        self.drift.iter().filter(|&&d| d).count()
    }

    /// The drift flags as a mask (row-indexed). Counterfactual analysis
    /// clones this, clears the bits covered by an accepted cause, and
    /// re-runs counting queries with the modified mask.
    pub fn drift_mask(&self) -> Vec<bool> {
        self.drift.clone()
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::SchemaMismatch`] if the entry does not provide a
    /// value for every schema key (extra keys are also rejected).
    pub fn push(&mut self, entry: DriftLogEntry) -> Result<()> {
        if entry.attrs.len() != self.schema.len() {
            let key = entry
                .attrs
                .iter()
                .map(|a| a.key.clone())
                .find(|k| !self.schema.contains(k))
                .unwrap_or_else(|| "<missing>".to_string());
            return Err(LogError::SchemaMismatch { key });
        }
        // Resolve values in schema order.
        let mut ids = Vec::with_capacity(self.schema.len());
        for (ci, key) in self.schema.iter().enumerate() {
            let Some(value) = entry.attrs.iter().find(|a| &a.key == key) else {
                return Err(LogError::SchemaMismatch { key: key.clone() });
            };
            ids.push((ci, self.dicts[ci].intern(&value.value)));
        }
        for (ci, id) in ids {
            self.columns[ci].push(id);
        }
        self.drift.push(entry.drift);
        self.timestamps.push(entry.timestamp);
        INGEST_ROWS.inc();
        if entry.drift {
            INGEST_DRIFTED.inc();
        }
        Ok(())
    }

    /// Appends many entries.
    ///
    /// # Errors
    ///
    /// Fails on the first mismatching entry; earlier entries stay appended.
    pub fn extend(&mut self, entries: impl IntoIterator<Item = DriftLogEntry>) -> Result<()> {
        for e in entries {
            self.push(e)?;
        }
        Ok(())
    }

    /// Reconstructs row `row` as an entry.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::RowOutOfRange`] for invalid rows.
    pub fn entry(&self, row: usize) -> Result<DriftLogEntry> {
        if row >= self.num_rows() {
            return Err(LogError::RowOutOfRange {
                row,
                rows: self.num_rows(),
            });
        }
        let attrs = self
            .schema
            .iter()
            .enumerate()
            .map(|(ci, key)| {
                Attribute::new(
                    key.clone(),
                    self.dicts[ci].values[self.columns[ci][row] as usize].clone(),
                )
            })
            .collect();
        Ok(DriftLogEntry {
            timestamp: self.timestamps[row],
            attrs,
            drift: self.drift[row],
        })
    }

    /// Distinct values of column `key`, with per-value `(occurrences,
    /// drifted)` counts — the first stage of apriori.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] for keys outside the schema.
    pub fn distinct_values(&self, key: &str) -> Result<Vec<(String, MatchCounts)>> {
        QUERY_DISTINCT.inc();
        let ci = self.column_index(key)?;
        let mut counts = vec![MatchCounts::default(); self.dicts[ci].values.len()];
        for (row, &vid) in self.columns[ci].iter().enumerate() {
            counts[vid as usize].occurrences += 1;
            if self.drift[row] {
                counts[vid as usize].drifted += 1;
            }
        }
        Ok(self.dicts[ci].values.iter().cloned().zip(counts).collect())
    }

    /// `COUNT(*)` and `COUNT(*) WHERE drift` for rows containing every
    /// attribute in `set`. A `mask` overrides the stored drift flags
    /// (counterfactual analysis); `None` uses the stored flags.
    ///
    /// Attributes whose value never occurs in the log yield zero counts.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] if an attribute key is not in the
    /// schema.
    pub fn count_matching(&self, set: &[Attribute], mask: Option<&[bool]>) -> Result<MatchCounts> {
        QUERY_COUNT.inc();
        let mut preds = Vec::with_capacity(set.len());
        for attr in set {
            let ci = self.column_index(&attr.key)?;
            match self.dicts[ci].lookup(&attr.value) {
                Some(vid) => preds.push((ci, vid)),
                None => return Ok(MatchCounts::default()),
            }
        }
        let drift = mask.unwrap_or(&self.drift);
        let mut counts = MatchCounts::default();
        'rows: for row in 0..self.num_rows() {
            for &(ci, vid) in &preds {
                if self.columns[ci][row] != vid {
                    continue 'rows;
                }
            }
            counts.occurrences += 1;
            if drift.get(row).copied().unwrap_or(false) {
                counts.drifted += 1;
            }
        }
        Ok(counts)
    }

    /// Row indices of entries containing every attribute in `set`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] for keys outside the schema.
    pub fn rows_matching(&self, set: &[Attribute]) -> Result<Vec<usize>> {
        QUERY_ROWS.inc();
        let mut preds = Vec::with_capacity(set.len());
        for attr in set {
            let ci = self.column_index(&attr.key)?;
            match self.dicts[ci].lookup(&attr.value) {
                Some(vid) => preds.push((ci, vid)),
                None => return Ok(Vec::new()),
            }
        }
        let mut rows = Vec::new();
        'rows: for row in 0..self.num_rows() {
            for &(ci, vid) in &preds {
                if self.columns[ci][row] != vid {
                    continue 'rows;
                }
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Retains only the rows with `timestamp` in `[t0, t1)`; returns the new
    /// log (the original is untouched). Used for windowed analysis.
    pub fn window(&self, t0: u64, t1: u64) -> DriftLog {
        let mut out = DriftLog::new(&self.schema.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for row in 0..self.num_rows() {
            let ts = self.timestamps[row];
            if ts >= t0 && ts < t1 {
                out.push(self.entry(row).expect("row in range"))
                    .expect("same schema");
            }
        }
        out
    }

    /// Per-value `(occurrences, drifted)` counts of `key`, grouped — the
    /// `GROUP BY` companion to [`DriftLog::distinct_values`] that skips
    /// zero-occurrence values and sorts by occurrence (descending), which is
    /// what an ops dashboard renders.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] for keys outside the schema.
    pub fn group_counts(&self, key: &str) -> Result<Vec<(String, MatchCounts)>> {
        let mut values = self.distinct_values(key)?;
        values.retain(|(_, c)| c.occurrences > 0);
        values.sort_by(|a, b| b.1.occurrences.cmp(&a.1.occurrences).then(a.0.cmp(&b.0)));
        Ok(values)
    }

    /// Drops all rows except the most recent `n` (by insertion order) —
    /// the retention policy a production drift log needs to bound storage.
    pub fn retain_last(&mut self, n: usize) {
        let rows = self.num_rows();
        if rows <= n {
            return;
        }
        let drop = rows - n;
        for column in &mut self.columns {
            column.drain(0..drop);
        }
        self.drift.drain(0..drop);
        self.timestamps.drain(0..drop);
    }

    /// The dictionary codes of column `ci` (schema order), one per row.
    ///
    /// This is the zero-copy view FIM algorithms use to encode transactions
    /// without materializing per-row `String`s (see
    /// `nazar-analysis/src/fpgrowth.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range for the schema.
    pub fn column_codes(&self, ci: usize) -> &[u32] {
        &self.columns[ci]
    }

    /// The dictionary (distinct value strings) of column `ci`, indexed by
    /// code.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range for the schema.
    pub fn dict_values(&self, ci: usize) -> &[String] {
        &self.dicts[ci].values
    }

    /// The stored per-row drift flags, row-indexed (a borrowed view; see
    /// [`DriftLog::drift_mask`] for an owned copy).
    pub fn drift_flags(&self) -> &[bool] {
        &self.drift
    }

    fn column_index(&self, key: &str) -> Result<usize> {
        self.schema
            .iter()
            .position(|k| k == key)
            .ok_or_else(|| LogError::UnknownKey {
                key: key.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> DriftLog {
        crate::paper_example_log()
    }

    #[test]
    fn push_rejects_schema_mismatch() {
        let mut log = DriftLog::new(&["weather"]);
        let bad = DriftLogEntry::new(0, &[("location", "x")], false);
        assert!(matches!(
            log.push(bad),
            Err(LogError::SchemaMismatch { .. })
        ));
        let too_many = DriftLogEntry::new(0, &[("weather", "x"), ("extra", "y")], false);
        assert!(log.push(too_many).is_err());
        assert_eq!(log.num_rows(), 0);
    }

    #[test]
    fn entry_round_trip() {
        let log = sample_log();
        let e = log.entry(3).unwrap();
        assert_eq!(e.attr("weather"), Some("snow"));
        assert_eq!(e.attr("location"), Some("new-york"));
        assert!(e.drift);
        assert!(log.entry(99).is_err());
    }

    #[test]
    fn count_matching_reproduces_paper_counts() {
        let log = sample_log();
        // {snow}: 2 occurrences, both drifted (Table 3 row 0 inputs).
        let c = log
            .count_matching(&[Attribute::new("weather", "snow")], None)
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (2, 2));
        // {new-york}: 3 occurrences, 2 drifted (Table 3 rank 6).
        let c = log
            .count_matching(&[Attribute::new("location", "new-york")], None)
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (3, 2));
        // {snow, new-york}: 1 occurrence, drifted.
        let c = log
            .count_matching(
                &[
                    Attribute::new("weather", "snow"),
                    Attribute::new("location", "new-york"),
                ],
                None,
            )
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (1, 1));
    }

    #[test]
    fn count_matching_with_mask_override() {
        let log = sample_log();
        let mut mask = log.drift_mask();
        mask.iter_mut().for_each(|m| *m = false);
        let c = log
            .count_matching(&[Attribute::new("weather", "snow")], Some(&mask))
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (2, 0));
    }

    #[test]
    fn count_matching_unknown_value_is_zero_unknown_key_errors() {
        let log = sample_log();
        let c = log
            .count_matching(&[Attribute::new("weather", "hail")], None)
            .unwrap();
        assert_eq!(c, MatchCounts::default());
        assert!(matches!(
            log.count_matching(&[Attribute::new("nope", "x")], None),
            Err(LogError::UnknownKey { .. })
        ));
    }

    #[test]
    fn distinct_values_counts() {
        let log = sample_log();
        let values = log.distinct_values("weather").unwrap();
        let snow = values.iter().find(|(v, _)| v == "snow").unwrap();
        assert_eq!((snow.1.occurrences, snow.1.drifted), (2, 2));
        let clear = values.iter().find(|(v, _)| v == "clear-day").unwrap();
        assert_eq!((clear.1.occurrences, clear.1.drifted), (3, 1));
    }

    #[test]
    fn rows_matching_returns_indices() {
        let log = sample_log();
        let rows = log
            .rows_matching(&[Attribute::new("device_id", "android_21")])
            .unwrap();
        assert_eq!(rows, vec![1, 2, 3]);
    }

    #[test]
    fn window_filters_by_timestamp() {
        let log = sample_log();
        let morning = log.window(0, 7 * 3600);
        assert_eq!(morning.num_rows(), 3);
        assert_eq!(morning.num_drifted(), 1);
    }

    #[test]
    fn serde_round_trip_preserves_queries() {
        let log = sample_log();
        let json = serde_json::to_string(&log).unwrap();
        let back: DriftLog = serde_json::from_str(&json).unwrap();
        let c = back
            .count_matching(&[Attribute::new("weather", "snow")], None)
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (2, 2));
        assert_eq!(back.num_rows(), 5);
    }

    #[test]
    fn deserialized_log_accepts_new_rows() {
        let log = sample_log();
        let json = serde_json::to_string(&log).unwrap();
        let mut back: DriftLog = serde_json::from_str(&json).unwrap();
        back.push(DriftLogEntry::new(
            99,
            &[
                ("weather", "snow"),
                ("location", "tibet"),
                ("device_id", "android_1"),
            ],
            true,
        ))
        .unwrap();
        // Interning must still unify with pre-existing dictionary entries.
        let c = back
            .count_matching(&[Attribute::new("weather", "snow")], None)
            .unwrap();
        assert_eq!(c.occurrences, 3);
    }

    #[test]
    fn group_counts_sorts_by_occurrence() {
        let log = sample_log();
        let groups = log.group_counts("weather").unwrap();
        assert_eq!(groups[0].0, "clear-day");
        assert_eq!(groups[0].1.occurrences, 3);
        assert_eq!(groups[1].0, "snow");
        for pair in groups.windows(2) {
            assert!(pair[0].1.occurrences >= pair[1].1.occurrences);
        }
    }

    #[test]
    fn retain_last_keeps_newest_rows() {
        let mut log = sample_log();
        log.retain_last(2);
        assert_eq!(log.num_rows(), 2);
        // The two snow rows (the most recent) survive.
        let c = log
            .count_matching(&[Attribute::new("weather", "snow")], None)
            .unwrap();
        assert_eq!(c.occurrences, 2);
        // Retaining more than present is a no-op.
        log.retain_last(10);
        assert_eq!(log.num_rows(), 2);
    }

    proptest::proptest! {
        #[test]
        fn counts_never_exceed_rows(drifts in proptest::collection::vec(proptest::bool::ANY, 1..60)) {
            let mut log = DriftLog::new(&["k"]);
            for (i, d) in drifts.iter().enumerate() {
                log.push(DriftLogEntry::new(i as u64, &[("k", if i % 3 == 0 { "a" } else { "b" })], *d)).unwrap();
            }
            let c = log.count_matching(&[Attribute::new("k", "a")], None).unwrap();
            proptest::prop_assert!(c.drifted <= c.occurrences);
            proptest::prop_assert!(c.occurrences <= log.num_rows());
        }
    }
}
