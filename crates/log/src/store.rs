//! Columnar drift-log store with dictionary encoding and a sharded,
//! posting-list query index.
//!
//! # Segment layout (DESIGN.md §10)
//!
//! The log keeps its columnar source of truth — one dictionary-encoded
//! `Vec<u32>` per attribute key, plus drift flags and timestamps — exactly
//! as before, and shards *the query index* over it: fixed-size row-range
//! `Segment`s, each carrying
//!
//! * per-column **posting lists**: for every dict code present in the
//!   segment, the sorted list of segment-local row offsets holding it;
//! * a **drifted-row bitmap** (`u64` words, LSB-first) with a cached
//!   popcount;
//! * the segment's **timestamp range** (`ts_min`/`ts_max`) for window
//!   pruning.
//!
//! Hot queries (`count_matching`, `rows_matching`, `distinct_values`,
//! `group_counts`) become per-segment posting-list intersections fanned out
//! over `nazar_tensor::parallel::par_map` and merged in segment order, so
//! results are bitwise identical at any `NAZAR_NUM_THREADS` (the PR-1
//! determinism contract; pinned by `tests/query_equivalence.rs`).
//! Maintenance is incremental: `push` appends to the tail segment in place,
//! `retain_last` drops whole head segments and rebuilds at most one partial
//! head segment, and `window` prunes segments by timestamp range.
//!
//! The index is never serialized: a deserialized log answers queries via the
//! original full-scan paths until its first mutation rebuilds the segments
//! (mirroring how [`Dict`] lazily rebuilds its interning map).

use crate::entry::{Attribute, DriftLogEntry};
use nazar_obs::{LazyCounter, LazyGauge, LazyHistogram};
use nazar_tensor::parallel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

static INGEST_ROWS: LazyCounter = LazyCounter::new(
    "nazar_log_ingest_rows_total",
    "Rows appended to the drift log",
    &[],
);
static INGEST_DRIFTED: LazyCounter = LazyCounter::new(
    "nazar_log_ingest_drifted_total",
    "Drift-flagged rows appended to the drift log",
    &[],
);
static QUERY_COUNT: LazyCounter = LazyCounter::new(
    "nazar_log_queries_total",
    "Counting/scan queries served by the drift log",
    &[("op", "count_matching")],
);
static QUERY_ROWS: LazyCounter = LazyCounter::new(
    "nazar_log_queries_total",
    "Counting/scan queries served by the drift log",
    &[("op", "rows_matching")],
);
static QUERY_DISTINCT: LazyCounter = LazyCounter::new(
    "nazar_log_queries_total",
    "Counting/scan queries served by the drift log",
    &[("op", "distinct_values")],
);
static SEGMENTS: LazyGauge = LazyGauge::new(
    "nazar_log_segments",
    "Row-range segments currently indexing the drift log",
    &[],
);
static INDEX_HITS: LazyCounter = LazyCounter::new(
    "nazar_log_index_hits_total",
    "Queries answered from the segment index instead of a full scan",
    &[],
);
static SEGMENTS_PRUNED: LazyCounter = LazyCounter::new(
    "nazar_log_segments_pruned_total",
    "Segments skipped whole by a posting-list miss or timestamp range",
    &[],
);
static QUERY_FANOUT: LazyHistogram = LazyHistogram::new_volatile(
    "nazar_log_query_fanout_width",
    "Worker threads used per indexed query fan-out",
    &[],
    nazar_obs::pow2_buckets,
);
static INGEST_QUARANTINED: LazyCounter = LazyCounter::new(
    "nazar_log_ingest_quarantined_total",
    "Batch-ingested entries rejected for schema mismatch",
    &[],
);
static INGEST_BATCH_ROWS: LazyHistogram = LazyHistogram::new(
    "nazar_log_ingest_batch_rows",
    "Entries per ingest_batch call",
    &[],
    nazar_obs::pow2_buckets,
);

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LogError>;

/// Errors raised by drift-log operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// An entry's attributes do not cover the log's schema.
    SchemaMismatch {
        /// The missing or unexpected key.
        key: String,
    },
    /// A query referenced an attribute key absent from the schema.
    UnknownKey {
        /// The offending key.
        key: String,
    },
    /// A row index was out of range.
    RowOutOfRange {
        /// The offending row.
        row: usize,
        /// Number of rows in the log.
        rows: usize,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::SchemaMismatch { key } => {
                write!(f, "entry does not match log schema at key `{key}`")
            }
            LogError::UnknownKey { key } => write!(f, "unknown attribute key `{key}`"),
            LogError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for log of {rows} rows")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// Result of a counting query over the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchCounts {
    /// Rows whose attributes contain the queried set.
    pub occurrences: usize,
    /// Of those, rows flagged as drift.
    pub drifted: usize,
}

/// Outcome of one [`DriftLog::ingest_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestReport {
    /// Entries appended to the log.
    pub appended: usize,
    /// Entries rejected for schema mismatch (counted, not appended).
    pub quarantined: usize,
}

/// Per-column dictionary of attribute values.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Dict {
    values: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Dict {
    fn intern(&mut self, value: &str) -> u32 {
        if self.index.is_empty() && !self.values.is_empty() {
            self.rebuild_index();
        }
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(value.to_string());
        self.index.insert(value.to_string(), id);
        id
    }

    fn lookup(&self, value: &str) -> Option<u32> {
        if self.index.is_empty() && !self.values.is_empty() {
            // Deserialized dictionaries fall back to a linear probe.
            return self
                .values
                .iter()
                .position(|v| v == value)
                .map(|i| i as u32);
        }
        self.index.get(value).copied()
    }

    fn rebuild_index(&mut self) {
        self.index = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
    }

    /// A dictionary over pre-interned `values` (code = position), with the
    /// lookup index ready. Used when reopening a persisted log whose
    /// dictionaries come from the store manifest.
    fn from_values(values: Vec<String>) -> Self {
        let mut dict = Dict {
            values,
            index: HashMap::new(),
        };
        dict.rebuild_index();
        dict
    }
}

/// Default rows per index segment. Small enough that tail maintenance and
/// partial-head rebuilds stay cheap, large enough that posting lists
/// amortize their per-code overhead; the `fleet_scale` bench sweeps sizes
/// around this choice.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

/// Segments below this count answer queries sequentially: fan-out overhead
/// beats the win on small (per-window) logs.
const MIN_PARALLEL_SEGMENTS: usize = 4;

/// Estimated row-probes a single parallel task should amortize. The query
/// fan-out width is `threads.min(est_work / WORK_PER_TASK)` (at least 1),
/// so queries whose total probe work is small stay serial no matter how
/// many threads are configured — spawning scoped workers costs on the
/// order of 100µs each, which at 50k rows used to make 8 threads ~8x
/// slower than 1 (the `fleet_scale` regression this bounds). A row-probe
/// is ~1ns, so 1Mi probes ≈ 1ms per task, an order of magnitude above
/// the spawn cost; `fleet_scale` asserts the resulting 8-thread mix stays
/// within 1.15x of serial at 50k and 500k rows.
const WORK_PER_TASK: usize = 1 << 20;

/// Entries per parallel encode task in [`DriftLog::ingest_batch`]; batches
/// below one task's worth encode serially.
const INGEST_ROWS_PER_TASK: usize = 4096;

/// How many parallel workers a query fanning out `est_work` row-probes
/// over `segments` segments should use. Pure so the sizing policy is unit
/// testable: width never exceeds `threads` or `segments`, and small work
/// collapses to 1 (serial).
fn fanout_width(threads: usize, est_work: usize, segments: usize) -> usize {
    if segments < MIN_PARALLEL_SEGMENTS {
        return 1;
    }
    threads
        .min(est_work / WORK_PER_TASK)
        .clamp(1, segments.max(1))
}

/// One row-range shard of the query index (see the module docs).
///
/// Covers global rows `start..start + rows`; all stored offsets are
/// segment-local (`global = start + local`), which is what lets
/// [`DriftLog::retain_last`] shift surviving segments by adjusting `start`
/// alone. Crate-visible so [`crate::probe::ColumnarBlock`] can build the
/// same index over a decoded storage chunk.
#[derive(Debug, Clone, Default)]
pub(crate) struct Segment {
    /// Global row id of local row 0.
    start: usize,
    /// Rows covered.
    rows: usize,
    /// Per column: `(dict code, sorted local rows)` pairs, sorted by code.
    postings: Vec<Vec<(u32, Vec<u32>)>>,
    /// Bitmap of drifted local rows, LSB-first `u64` words.
    drifted: Vec<u64>,
    /// Popcount of `drifted`.
    drifted_count: usize,
    /// Minimum timestamp in the segment (meaningless when `rows == 0`).
    ts_min: u64,
    /// Maximum timestamp in the segment (meaningless when `rows == 0`).
    ts_max: u64,
}

impl Segment {
    pub(crate) fn new(start: usize, columns: usize) -> Self {
        Segment {
            start,
            postings: vec![Vec::new(); columns],
            ..Segment::default()
        }
    }

    /// Appends global row `row` (read from the log's columns) as the next
    /// local row.
    pub(crate) fn push_row(&mut self, columns: &[Vec<u32>], row: usize, drift: bool, ts: u64) {
        let local = self.rows as u32;
        for (posting, column) in self.postings.iter_mut().zip(columns) {
            let code = column[row];
            match posting.binary_search_by_key(&code, |(c, _)| *c) {
                Ok(pos) => posting[pos].1.push(local),
                Err(pos) => posting.insert(pos, (code, vec![local])),
            }
        }
        if drift {
            let word = self.rows / 64;
            if word >= self.drifted.len() {
                self.drifted.resize(word + 1, 0);
            }
            self.drifted[word] |= 1 << (self.rows % 64);
            self.drifted_count += 1;
        }
        if self.rows == 0 {
            self.ts_min = ts;
            self.ts_max = ts;
        } else {
            self.ts_min = self.ts_min.min(ts);
            self.ts_max = self.ts_max.max(ts);
        }
        self.rows += 1;
    }

    /// The sorted local rows holding `code` in column `ci`, if any.
    fn posting(&self, ci: usize, code: u32) -> Option<&[u32]> {
        let column = &self.postings[ci];
        column
            .binary_search_by_key(&code, |(c, _)| *c)
            .ok()
            .map(|pos| column[pos].1.as_slice())
    }

    /// Number of drift-flagged rows in the segment.
    pub(crate) fn drifted_count(&self) -> usize {
        self.drifted_count
    }

    /// Whether local row `local` is drift-flagged.
    pub(crate) fn drifted_bit(&self, local: u32) -> bool {
        let i = local as usize;
        self.drifted
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Adds this segment's per-value `(occurrences, drifted)` contributions
    /// for column `ci` into `counts` (indexed by dict code). Codes at or
    /// beyond `counts.len()` are ignored — callers size `counts` to the
    /// dictionary they resolve against.
    pub(crate) fn accumulate_value_counts(&self, ci: usize, counts: &mut [MatchCounts]) {
        for (code, rows) in &self.postings[ci] {
            let Some(c) = counts.get_mut(*code as usize) else {
                continue;
            };
            c.occurrences += rows.len();
            c.drifted += rows.iter().filter(|&&l| self.drifted_bit(l)).count();
        }
    }
}

/// The global drift log: one dictionary-encoded column per attribute key,
/// plus the drift flags and timestamps (DESIGN.md substitution S7 for the
/// paper's Aurora table), sharded into row-range index `Segment`s.
///
/// Counting queries run as per-segment posting-list intersections fanned
/// out over scoped threads with an ordered merge — bitwise identical to the
/// original single-threaded full scans at any thread count, but sublinear
/// in rows for selective predicates and parallel for the rest. The
/// full-scan paths are kept both as the fallback for freshly deserialized
/// logs (the index is not serialized) and as the explicit pre-index
/// baseline behind [`DriftLog::set_index_enabled`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DriftLog {
    schema: Vec<String>,
    columns: Vec<Vec<u32>>,
    dicts: Vec<Dict>,
    drift: Vec<bool>,
    timestamps: Vec<u64>,
    #[serde(skip)]
    segments: Vec<Segment>,
    /// Configured rows per segment; 0 means [`DEFAULT_SEGMENT_ROWS`].
    #[serde(skip)]
    segment_rows: usize,
    /// Inverted so the serde-skip default (`false`) keeps indexing on for
    /// deserialized logs.
    #[serde(skip)]
    index_disabled: bool,
}

/// Logical equality: two logs are equal when they hold the same schema and
/// rows, regardless of index state (a deserialized log has no segments
/// until its first mutation) or dictionary-map internals.
impl PartialEq for DriftLog {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.columns == other.columns
            && self.dicts.len() == other.dicts.len()
            && self
                .dicts
                .iter()
                .zip(&other.dicts)
                .all(|(a, b)| a.values == b.values)
            && self.drift == other.drift
            && self.timestamps == other.timestamps
    }
}

impl DriftLog {
    /// Creates an empty log over the given attribute keys.
    pub fn new(schema: &[&str]) -> Self {
        DriftLog {
            schema: schema.iter().map(|s| s.to_string()).collect(),
            columns: vec![Vec::new(); schema.len()],
            dicts: vec![Dict::default(); schema.len()],
            drift: Vec::new(),
            timestamps: Vec::new(),
            segments: Vec::new(),
            segment_rows: 0,
            index_disabled: false,
        }
    }

    /// Creates an empty log whose per-column dictionaries are pre-seeded
    /// with `dict_values` (one value list per schema key, code = position).
    ///
    /// This is the reopen path of the persistent store (`nazar-store`): the
    /// manifest records the dictionaries interned so far, and the tail log
    /// must resolve and intern against *exactly* those codes so persisted
    /// chunks and fresh rows share one code space.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::SchemaMismatch`] when `dict_values` does not
    /// provide exactly one value list per schema key.
    pub fn with_dict_values(schema: &[String], dict_values: Vec<Vec<String>>) -> Result<Self> {
        if dict_values.len() != schema.len() {
            return Err(LogError::SchemaMismatch {
                key: schema
                    .get(dict_values.len())
                    .cloned()
                    .unwrap_or_else(|| "<extra dictionary>".to_string()),
            });
        }
        let mut log = DriftLog::new(&schema.iter().map(String::as_str).collect::<Vec<_>>());
        log.dicts = dict_values.into_iter().map(Dict::from_values).collect();
        Ok(log)
    }

    /// Sets the index segment size (rows per segment, clamped to at
    /// least one) and rebuilds the index. Exists for tests and benches
    /// that need segment boundaries at small row counts; production code
    /// keeps [`DEFAULT_SEGMENT_ROWS`].
    pub fn with_segment_rows(mut self, rows: usize) -> Self {
        self.segment_rows = rows.max(1);
        if !self.index_disabled {
            self.rebuild_index();
        }
        self
    }

    /// Enables or disables the segment index. Disabling reverts every query
    /// to the original single-threaded full scan — the pre-index baseline
    /// the `fleet_scale` bench and the differential suite compare against.
    pub fn set_index_enabled(&mut self, enabled: bool) {
        self.index_disabled = !enabled;
        if enabled {
            self.ensure_index();
        } else {
            self.segments.clear();
        }
    }

    /// Whether queries may use the segment index.
    pub fn is_index_enabled(&self) -> bool {
        !self.index_disabled
    }

    /// Number of row-range segments currently indexing the log (0 for a
    /// deserialized log that has not been mutated yet).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The effective rows-per-segment setting.
    pub fn segment_rows(&self) -> usize {
        if self.segment_rows == 0 {
            DEFAULT_SEGMENT_ROWS
        } else {
            self.segment_rows
        }
    }

    /// The attribute keys (column names).
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.drift.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.drift.is_empty()
    }

    /// Number of rows flagged as drift.
    pub fn num_drifted(&self) -> usize {
        if self.index_ready() {
            return self.segments.iter().map(|s| s.drifted_count).sum();
        }
        self.drift.iter().filter(|&&d| d).count()
    }

    /// The drift flags as a mask (row-indexed). Counterfactual analysis
    /// clones this, clears the bits covered by an accepted cause, and
    /// re-runs counting queries with the modified mask.
    pub fn drift_mask(&self) -> Vec<bool> {
        self.drift.clone()
    }

    /// Whether the segments cover every row (false right after
    /// deserialization, until the first mutation rebuilds them).
    fn index_ready(&self) -> bool {
        !self.index_disabled && self.covered_rows() == self.num_rows()
    }

    /// Rows covered by the (contiguous-from-zero) segment list.
    fn covered_rows(&self) -> usize {
        self.segments.last().map_or(0, |s| s.start + s.rows)
    }

    fn ensure_index(&mut self) {
        if !self.index_disabled && self.covered_rows() != self.num_rows() {
            self.rebuild_index();
        }
    }

    fn rebuild_index(&mut self) {
        self.segments.clear();
        let rows = self.num_rows();
        let step = self.segment_rows();
        let mut start = 0;
        while start < rows {
            let n = step.min(rows - start);
            self.segments.push(self.build_segment(start, n));
            start += n;
        }
        SEGMENTS.set(self.segments.len() as f64);
    }

    /// Builds one segment over global rows `start..start + n` from the
    /// columnar store.
    fn build_segment(&self, start: usize, n: usize) -> Segment {
        let mut seg = Segment::new(start, self.schema.len());
        for row in start..start + n {
            seg.push_row(&self.columns, row, self.drift[row], self.timestamps[row]);
        }
        seg
    }

    /// Incremental tail maintenance: indexes the row just appended to the
    /// columnar store, starting a fresh segment when the tail is full.
    fn index_append_last_row(&mut self) {
        if self.index_disabled {
            return;
        }
        let rows = self.num_rows();
        if self.covered_rows() + 1 != rows {
            // Deserialized (or otherwise stale) index: one full rebuild
            // brings it back in sync, including the new row.
            self.rebuild_index();
            return;
        }
        let row = rows - 1;
        if self
            .segments
            .last()
            .is_none_or(|s| s.rows >= self.segment_rows())
        {
            self.segments.push(Segment::new(row, self.schema.len()));
            SEGMENTS.set(self.segments.len() as f64);
        }
        if let Some(seg) = self.segments.last_mut() {
            seg.push_row(&self.columns, row, self.drift[row], self.timestamps[row]);
        }
    }

    /// Appends an already-encoded row and maintains the tail segment.
    fn append_coded(&mut self, codes: &[u32], drift: bool, timestamp: u64) {
        for (column, &code) in self.columns.iter_mut().zip(codes) {
            column.push(code);
        }
        self.drift.push(drift);
        self.timestamps.push(timestamp);
        INGEST_ROWS.inc();
        if drift {
            INGEST_DRIFTED.inc();
        }
        self.index_append_last_row();
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::SchemaMismatch`] if the entry does not provide a
    /// value for every schema key (extra keys are also rejected).
    pub fn push(&mut self, entry: DriftLogEntry) -> Result<()> {
        if entry.attrs.len() != self.schema.len() {
            let key = entry
                .attrs
                .iter()
                .map(|a| a.key.clone())
                .find(|k| !self.schema.contains(k))
                .unwrap_or_else(|| "<missing>".to_string());
            return Err(LogError::SchemaMismatch { key });
        }
        // Resolve values in schema order.
        let mut codes = Vec::with_capacity(self.schema.len());
        for (ci, key) in self.schema.iter().enumerate() {
            let Some(value) = entry.attrs.iter().find(|a| &a.key == key) else {
                return Err(LogError::SchemaMismatch { key: key.clone() });
            };
            codes.push(self.dicts[ci].intern(&value.value));
        }
        self.append_coded(&codes, entry.drift, entry.timestamp);
        Ok(())
    }

    /// Appends many entries.
    ///
    /// # Errors
    ///
    /// Fails on the first mismatching entry; earlier entries stay appended.
    pub fn extend(&mut self, entries: impl IntoIterator<Item = DriftLogEntry>) -> Result<()> {
        for e in entries {
            self.push(e)?;
        }
        Ok(())
    }

    /// Batch ingest for window uploads: encodes entries against the
    /// dictionaries in parallel, then appends sequentially.
    ///
    /// Equivalent to `for e in entries { let _ = self.push(e); }` — entries
    /// that fail the schema check are quarantined (counted, not appended)
    /// instead of aborting the batch, and the final log state (rows *and*
    /// dictionaries, including `push`'s interning of a failing entry's
    /// leading columns) is byte-identical to that loop at any thread count.
    /// `tests` pin this differentially.
    pub fn ingest_batch(&mut self, entries: Vec<DriftLogEntry>) -> IngestReport {
        self.ingest_batch_with_threads(entries, parallel::num_threads())
    }

    /// [`DriftLog::ingest_batch`] with an explicit encode fan-out width —
    /// the determinism-audit hook; results are identical for every
    /// `threads`.
    pub fn ingest_batch_with_threads(
        &mut self,
        entries: Vec<DriftLogEntry>,
        threads: usize,
    ) -> IngestReport {
        INGEST_BATCH_ROWS.observe(entries.len() as f64);
        // Phase A: pure encode. Read-only dictionary lookups, so entries
        // shard freely across workers; an entry whose values are all
        // already interned comes back `Some(codes)`, anything else (new
        // value, schema mismatch) falls through to the sequential path.
        let width = threads.min((entries.len() / INGEST_ROWS_PER_TASK).max(1));
        let coded: Vec<Option<Vec<u32>>> = {
            let schema = &self.schema;
            let dicts = &self.dicts;
            parallel::par_map_with(entries.iter().collect(), width, |e: &DriftLogEntry| {
                if e.attrs.len() != schema.len() {
                    return None;
                }
                let mut codes = Vec::with_capacity(schema.len());
                for (ci, key) in schema.iter().enumerate() {
                    let value = e.attrs.iter().find(|a| &a.key == key)?;
                    codes.push(dicts[ci].lookup(&value.value)?);
                }
                Some(codes)
            })
        };
        // Phase B: sequential append, in arrival order. Pre-coded entries
        // skip straight to the columnar append; the rest replay `push` so
        // first-use interning order and partial-interning-before-failure
        // match the naive loop exactly.
        let mut report = IngestReport::default();
        for (entry, codes) in entries.into_iter().zip(coded) {
            match codes {
                Some(codes) => {
                    self.append_coded(&codes, entry.drift, entry.timestamp);
                    report.appended += 1;
                }
                None => match self.push(entry) {
                    Ok(()) => report.appended += 1,
                    Err(_) => {
                        INGEST_QUARANTINED.inc();
                        report.quarantined += 1;
                    }
                },
            }
        }
        report
    }

    /// Reconstructs row `row` as an entry.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::RowOutOfRange`] for invalid rows.
    pub fn entry(&self, row: usize) -> Result<DriftLogEntry> {
        if row >= self.num_rows() {
            return Err(LogError::RowOutOfRange {
                row,
                rows: self.num_rows(),
            });
        }
        let attrs = self
            .schema
            .iter()
            .enumerate()
            .map(|(ci, key)| {
                Attribute::new(
                    key.clone(),
                    self.dicts[ci].values[self.columns[ci][row] as usize].clone(),
                )
            })
            .collect();
        Ok(DriftLogEntry {
            timestamp: self.timestamps[row],
            attrs,
            drift: self.drift[row],
        })
    }

    /// Resolves a query's attribute set to `(column, code)` predicates.
    /// `Ok(None)` means some value never occurs in the log, so the query
    /// trivially matches nothing.
    fn resolve_preds(&self, set: &[Attribute]) -> Result<Option<Vec<(usize, u32)>>> {
        let mut preds = Vec::with_capacity(set.len());
        for attr in set {
            let ci = self.column_index(&attr.key)?;
            match self.dicts[ci].lookup(&attr.value) {
                Some(vid) => preds.push((ci, vid)),
                None => return Ok(None),
            }
        }
        Ok(Some(preds))
    }

    /// Maps `f` over the segments, fanning out across scoped workers for
    /// large queries; results come back in segment order regardless of the
    /// fan-out width.
    ///
    /// The width is cost-aware: `est_work` (the query's estimated total
    /// row-probes, see [`DriftLog::estimate_probe_work`]) is divided into
    /// [`WORK_PER_TASK`]-sized tasks, capped at `threads`. Each worker gets
    /// a contiguous *batch* of segments, so narrow fan-outs over many
    /// segments spawn few threads rather than many tiny tasks, and queries
    /// below one task's worth of work stay serial entirely.
    fn map_segments<R, F>(&self, threads: usize, est_work: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Segment) -> R + Sync,
    {
        let width = fanout_width(threads, est_work, self.segments.len());
        QUERY_FANOUT.observe(width as f64);
        if width <= 1 {
            return self.segments.iter().map(f).collect();
        }
        parallel::par_map_with(self.segments.iter().collect(), width, f)
    }

    /// Estimated row-probes needed to answer a query over `preds`: per
    /// segment, the probe loop walks the smallest predicate posting list
    /// (zero when any predicate's code is absent — the pruned-segment fast
    /// path), and an empty predicate set touches every indexed row. The
    /// pre-pass is a handful of binary searches per segment — negligible
    /// next to the probes it sizes.
    fn estimate_probe_work(&self, preds: &[(usize, u32)]) -> usize {
        if preds.is_empty() {
            return self.covered_rows();
        }
        self.segments
            .iter()
            .map(|seg| {
                preds
                    .iter()
                    .map(|&(ci, vid)| seg.posting(ci, vid).map_or(0, <[u32]>::len))
                    .min()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Distinct values of column `key`, with per-value `(occurrences,
    /// drifted)` counts — the first stage of apriori.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] for keys outside the schema.
    pub fn distinct_values(&self, key: &str) -> Result<Vec<(String, MatchCounts)>> {
        self.distinct_values_with_threads(key, parallel::num_threads())
    }

    /// [`DriftLog::distinct_values`] with an explicit fan-out width — the
    /// determinism-audit hook used by the differential query suite; results
    /// are bitwise identical for every `threads`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] for keys outside the schema.
    pub fn distinct_values_with_threads(
        &self,
        key: &str,
        threads: usize,
    ) -> Result<Vec<(String, MatchCounts)>> {
        QUERY_DISTINCT.inc();
        let ci = self.column_index(key)?;
        let n_values = self.dicts[ci].values.len();
        let counts = if self.index_ready() {
            INDEX_HITS.inc();
            let partials = self.map_segments(threads, self.covered_rows(), |seg| {
                let mut counts = vec![MatchCounts::default(); n_values];
                seg.accumulate_value_counts(ci, &mut counts);
                counts
            });
            let mut counts = vec![MatchCounts::default(); n_values];
            for partial in partials {
                for (total, part) in counts.iter_mut().zip(partial) {
                    total.occurrences += part.occurrences;
                    total.drifted += part.drifted;
                }
            }
            counts
        } else {
            let mut counts = vec![MatchCounts::default(); n_values];
            for (row, &vid) in self.columns[ci].iter().enumerate() {
                counts[vid as usize].occurrences += 1;
                if self.drift[row] {
                    counts[vid as usize].drifted += 1;
                }
            }
            counts
        };
        Ok(self.dicts[ci].values.iter().cloned().zip(counts).collect())
    }

    /// `COUNT(*)` and `COUNT(*) WHERE drift` for rows containing every
    /// attribute in `set`. A `mask` overrides the stored drift flags
    /// (counterfactual analysis); `None` uses the stored flags.
    ///
    /// Attributes whose value never occurs in the log yield zero counts.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] if an attribute key is not in the
    /// schema.
    pub fn count_matching(&self, set: &[Attribute], mask: Option<&[bool]>) -> Result<MatchCounts> {
        self.count_matching_with_threads(set, mask, parallel::num_threads())
    }

    /// [`DriftLog::count_matching`] with an explicit fan-out width — the
    /// determinism-audit hook used by the differential query suite; results
    /// are bitwise identical for every `threads`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] if an attribute key is not in the
    /// schema.
    pub fn count_matching_with_threads(
        &self,
        set: &[Attribute],
        mask: Option<&[bool]>,
        threads: usize,
    ) -> Result<MatchCounts> {
        QUERY_COUNT.inc();
        let Some(preds) = self.resolve_preds(set)? else {
            return Ok(MatchCounts::default());
        };
        if self.index_ready() {
            INDEX_HITS.inc();
            let partials = self.map_segments(threads, self.estimate_probe_work(&preds), |seg| {
                segment_count(&self.columns, seg, &preds, mask)
            });
            let mut counts = MatchCounts::default();
            for part in partials {
                counts.occurrences += part.occurrences;
                counts.drifted += part.drifted;
            }
            return Ok(counts);
        }
        // Full-scan fallback (the original query path).
        let drift = mask.unwrap_or(&self.drift);
        let mut counts = MatchCounts::default();
        'rows: for row in 0..self.num_rows() {
            for &(ci, vid) in &preds {
                if self.columns[ci][row] != vid {
                    continue 'rows;
                }
            }
            counts.occurrences += 1;
            if drift.get(row).copied().unwrap_or(false) {
                counts.drifted += 1;
            }
        }
        Ok(counts)
    }

    /// Row indices of entries containing every attribute in `set`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] for keys outside the schema.
    pub fn rows_matching(&self, set: &[Attribute]) -> Result<Vec<usize>> {
        self.rows_matching_with_threads(set, parallel::num_threads())
    }

    /// [`DriftLog::rows_matching`] with an explicit fan-out width — the
    /// determinism-audit hook used by the differential query suite; results
    /// (values *and* ordering) are identical for every `threads`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] for keys outside the schema.
    pub fn rows_matching_with_threads(
        &self,
        set: &[Attribute],
        threads: usize,
    ) -> Result<Vec<usize>> {
        QUERY_ROWS.inc();
        let Some(preds) = self.resolve_preds(set)? else {
            return Ok(Vec::new());
        };
        if self.index_ready() {
            INDEX_HITS.inc();
            // Per-segment results are ascending local offsets; segments are
            // ascending row ranges, so the ordered merge is concatenation.
            let partials = self.map_segments(threads, self.estimate_probe_work(&preds), |seg| {
                if preds.is_empty() {
                    return (seg.start..seg.start + seg.rows).collect::<Vec<usize>>();
                }
                let mut rows = Vec::new();
                probe_segment(&self.columns, seg, &preds, |_, row| rows.push(row));
                rows
            });
            return Ok(partials.into_iter().flatten().collect());
        }
        let mut rows = Vec::new();
        'rows: for row in 0..self.num_rows() {
            for &(ci, vid) in &preds {
                if self.columns[ci][row] != vid {
                    continue 'rows;
                }
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Retains only the rows with `timestamp` in `[t0, t1)`; returns the new
    /// log (the original is untouched). Used for windowed analysis.
    ///
    /// With the index ready this works at segment granularity: segments
    /// whose timestamp range misses `[t0, t1)` are pruned whole, segments
    /// fully inside copy without per-row comparisons, and only boundary
    /// segments scan row by row. Rows are copied code-to-code with a
    /// per-column remap (values are interned into the new log in first-use
    /// order, exactly as a naive rebuild via `push` would).
    pub fn window(&self, t0: u64, t1: u64) -> DriftLog {
        let mut out = DriftLog::new(&self.schema.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        out.segment_rows = self.segment_rows;
        out.index_disabled = self.index_disabled;
        if t0 >= t1 {
            return out;
        }
        // Per-column memo from our codes to the output log's codes.
        let mut remaps: Vec<Vec<Option<u32>>> = self
            .dicts
            .iter()
            .map(|d| vec![None; d.values.len()])
            .collect();
        let mut copy_row = |out: &mut DriftLog, row: usize| {
            let mut codes = Vec::with_capacity(self.schema.len());
            for (ci, remap) in remaps.iter_mut().enumerate() {
                let old = self.columns[ci][row] as usize;
                let new = match remap[old] {
                    Some(new) => new,
                    None => {
                        let new = out.dicts[ci].intern(&self.dicts[ci].values[old]);
                        remap[old] = Some(new);
                        new
                    }
                };
                codes.push(new);
            }
            out.append_coded(&codes, self.drift[row], self.timestamps[row]);
        };
        if self.index_ready() {
            for seg in &self.segments {
                if seg.rows == 0 {
                    continue;
                }
                if seg.ts_max < t0 || seg.ts_min >= t1 {
                    SEGMENTS_PRUNED.inc();
                    continue;
                }
                let take_all = seg.ts_min >= t0 && seg.ts_max < t1;
                for row in seg.start..seg.start + seg.rows {
                    if take_all || (self.timestamps[row] >= t0 && self.timestamps[row] < t1) {
                        copy_row(&mut out, row);
                    }
                }
            }
        } else {
            for row in 0..self.num_rows() {
                let ts = self.timestamps[row];
                if ts >= t0 && ts < t1 {
                    copy_row(&mut out, row);
                }
            }
        }
        out
    }

    /// Per-value `(occurrences, drifted)` counts of `key`, grouped — the
    /// `GROUP BY` companion to [`DriftLog::distinct_values`] that skips
    /// zero-occurrence values and sorts by occurrence (descending), which is
    /// what an ops dashboard renders.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] for keys outside the schema.
    pub fn group_counts(&self, key: &str) -> Result<Vec<(String, MatchCounts)>> {
        let mut values = self.distinct_values(key)?;
        values.retain(|(_, c)| c.occurrences > 0);
        values.sort_by(|a, b| b.1.occurrences.cmp(&a.1.occurrences).then(a.0.cmp(&b.0)));
        Ok(values)
    }

    /// Drops all rows except the most recent `n` (by insertion order) —
    /// the retention policy a production drift log needs to bound storage.
    ///
    /// Index maintenance is segment-granular: head segments whose rows are
    /// all dropped are removed, survivors shift their `start`, and at most
    /// one partially-dropped boundary segment is rebuilt from the retained
    /// rows.
    pub fn retain_last(&mut self, n: usize) {
        let rows = self.num_rows();
        if rows <= n {
            return;
        }
        let ready = self.index_ready();
        let drop = rows - n;
        for column in &mut self.columns {
            column.drain(0..drop);
        }
        self.drift.drain(0..drop);
        self.timestamps.drain(0..drop);
        if !ready {
            // The index was stale (or disabled) before retention; do not
            // leave half-shifted segments behind.
            self.segments.clear();
            SEGMENTS.set(0.0);
            return;
        }
        let old_segments = std::mem::take(&mut self.segments);
        let mut segments = Vec::with_capacity(old_segments.len());
        for mut seg in old_segments {
            let end = seg.start + seg.rows;
            if end <= drop {
                continue; // fully dropped head segment
            }
            if seg.start >= drop {
                seg.start -= drop;
                segments.push(seg);
            } else {
                // The one boundary segment that straddles the cut: rebuild
                // its postings/bitmap over the retained prefix rows.
                segments.push(self.build_segment_from(0, end - drop));
            }
        }
        self.segments = segments;
        SEGMENTS.set(self.segments.len() as f64);
    }

    /// [`DriftLog::build_segment`] callable while `self.segments` is taken.
    fn build_segment_from(&self, start: usize, n: usize) -> Segment {
        self.build_segment(start, n)
    }

    /// The dictionary codes of column `ci` (schema order), one per row.
    ///
    /// This is the zero-copy view FIM algorithms use to encode transactions
    /// without materializing per-row `String`s (see
    /// `nazar-analysis/src/fpgrowth.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range for the schema.
    pub fn column_codes(&self, ci: usize) -> &[u32] {
        &self.columns[ci]
    }

    /// The dictionary (distinct value strings) of column `ci`, indexed by
    /// code.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range for the schema.
    pub fn dict_values(&self, ci: usize) -> &[String] {
        &self.dicts[ci].values
    }

    /// The stored per-row drift flags, row-indexed (a borrowed view; see
    /// [`DriftLog::drift_mask`] for an owned copy).
    pub fn drift_flags(&self) -> &[bool] {
        &self.drift
    }

    /// The per-row timestamps, row-indexed. The persistent store reads
    /// these when sealing rows into chunks.
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps
    }

    /// Resolves a query attribute set against this log's schema and
    /// dictionaries into `(column index, dict code)` predicates — the form
    /// [`crate::probe::ColumnarBlock`] probes take. `Ok(None)` means some
    /// value was never interned, so the query trivially matches nothing.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownKey`] for keys outside the schema.
    pub fn resolve_predicates(&self, set: &[Attribute]) -> Result<Option<Vec<(usize, u32)>>> {
        self.resolve_preds(set)
    }

    fn column_index(&self, key: &str) -> Result<usize> {
        self.schema
            .iter()
            .position(|k| k == key)
            .ok_or_else(|| LogError::UnknownKey {
                key: key.to_string(),
            })
    }
}

/// Finds the predicate whose posting list in `seg` is smallest, returning
/// its index in `preds` and the list. `None` when some predicate's code is
/// absent from the segment entirely (the pruned-segment fast path).
/// `preds` must be non-empty.
fn smallest_posting<'s>(seg: &'s Segment, preds: &[(usize, u32)]) -> Option<(usize, &'s [u32])> {
    let mut best: Option<(usize, &[u32])> = None;
    for (pi, &(ci, vid)) in preds.iter().enumerate() {
        let Some(list) = seg.posting(ci, vid) else {
            SEGMENTS_PRUNED.inc();
            return None;
        };
        if best.is_none_or(|(_, b)| list.len() < b.len()) {
            best = Some((pi, list));
        }
    }
    best
}

/// Walks the smallest posting list of `preds` in `seg`, verifying the
/// remaining predicates by direct lookup in the dictionary-encoded
/// `columns` — `O(smallest list × preds)` with no merge or allocation —
/// and calls `emit(local, global)` for each matching row, in ascending
/// row order.
pub(crate) fn probe_segment<F: FnMut(u32, usize)>(
    columns: &[Vec<u32>],
    seg: &Segment,
    preds: &[(usize, u32)],
    mut emit: F,
) {
    let Some((pi, list)) = smallest_posting(seg, preds) else {
        return;
    };
    if preds.len() == 1 {
        // The posting list alone answers a single-predicate query.
        for &local in list {
            emit(local, seg.start + local as usize);
        }
        return;
    }
    'locals: for &local in list {
        let row = seg.start + local as usize;
        for (k, &(ci, vid)) in preds.iter().enumerate() {
            if k != pi && columns[ci][row] != vid {
                continue 'locals;
            }
        }
        emit(local, row);
    }
}

/// One segment's contribution to `count_matching`.
pub(crate) fn segment_count(
    columns: &[Vec<u32>],
    seg: &Segment,
    preds: &[(usize, u32)],
    mask: Option<&[bool]>,
) -> MatchCounts {
    if preds.is_empty() {
        // Every row matches the empty set.
        let drifted = match mask {
            None => seg.drifted_count,
            Some(mask) => (0..seg.rows)
                .filter(|&l| mask.get(seg.start + l).copied().unwrap_or(false))
                .count(),
        };
        return MatchCounts {
            occurrences: seg.rows,
            drifted,
        };
    }
    let mut counts = MatchCounts::default();
    probe_segment(columns, seg, preds, |local, row| {
        counts.occurrences += 1;
        let drifted = match mask {
            None => seg.drifted_bit(local),
            Some(mask) => mask.get(row).copied().unwrap_or(false),
        };
        if drifted {
            counts.drifted += 1;
        }
    });
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> DriftLog {
        crate::paper_example_log()
    }

    #[test]
    fn push_rejects_schema_mismatch() {
        let mut log = DriftLog::new(&["weather"]);
        let bad = DriftLogEntry::new(0, &[("location", "x")], false);
        assert!(matches!(
            log.push(bad),
            Err(LogError::SchemaMismatch { .. })
        ));
        let too_many = DriftLogEntry::new(0, &[("weather", "x"), ("extra", "y")], false);
        assert!(log.push(too_many).is_err());
        assert_eq!(log.num_rows(), 0);
    }

    #[test]
    fn fanout_width_is_cost_aware() {
        // Below the segment floor: always serial.
        assert_eq!(fanout_width(8, usize::MAX, MIN_PARALLEL_SEGMENTS - 1), 1);
        // Small work stays serial regardless of configured threads — the
        // fleet_scale 50k-row regression case.
        assert_eq!(fanout_width(8, 50_000, 16), 1);
        // Work scales the width up to the thread cap...
        assert_eq!(fanout_width(8, 3 * WORK_PER_TASK, 16), 3);
        assert_eq!(fanout_width(8, 100 * WORK_PER_TASK, 16), 8);
        // ...and never exceeds the segment count.
        assert_eq!(fanout_width(8, 100 * WORK_PER_TASK, 5), 5);
    }

    #[test]
    fn ingest_batch_matches_push_loop() {
        let make_entries = || -> Vec<DriftLogEntry> {
            let mut v = Vec::new();
            for i in 0..500u64 {
                let weather = ["clear", "snow", "rain"][(i % 3) as usize];
                let loc = ["nyc", "helsinki"][(i % 2) as usize];
                v.push(DriftLogEntry::new(
                    i,
                    &[("weather", weather), ("location", loc)],
                    i % 5 == 0,
                ));
            }
            // A mismatching entry with a valid leading column: push()
            // interns "fog" into the weather dict before failing, and the
            // batch path must reproduce that partial interning when it
            // quarantines the entry.
            v.insert(
                250,
                DriftLogEntry::new(999, &[("weather", "fog"), ("altitude", "high")], true),
            );
            // Wrong arity: rejected before any interning.
            v.insert(100, DriftLogEntry::new(998, &[("weather", "clear")], false));
            v
        };
        let mut by_push = DriftLog::new(&["weather", "location"]).with_segment_rows(64);
        let mut failures = 0;
        for e in make_entries() {
            if by_push.push(e).is_err() {
                failures += 1;
            }
        }
        for threads in [1, 2, 8] {
            let mut by_batch = DriftLog::new(&["weather", "location"]).with_segment_rows(64);
            let report = by_batch.ingest_batch_with_threads(make_entries(), threads);
            assert_eq!(
                report,
                IngestReport {
                    appended: 500,
                    quarantined: failures,
                }
            );
            // Log equality covers rows *and* dictionary contents, so the
            // quarantined entry's partial interning is part of the check;
            // make it explicit too.
            assert_eq!(by_batch, by_push, "threads={threads}");
            assert!(by_batch.dict_values(0).iter().any(|v| v == "fog"));
            let snow = [Attribute::new("weather", "snow")];
            assert_eq!(
                by_batch.count_matching(&snow, None).unwrap(),
                by_push.count_matching(&snow, None).unwrap(),
            );
        }
    }

    #[test]
    fn ingest_batch_encodes_in_parallel_when_dicts_are_warm() {
        // Enough entries to clear INGEST_ROWS_PER_TASK so phase A actually
        // fans out, with values pre-interned so every entry takes the
        // pre-coded fast path; the result must still match the push loop.
        let n = 2 * INGEST_ROWS_PER_TASK as u64;
        let entries: Vec<DriftLogEntry> = (0..n)
            .map(|i| {
                DriftLogEntry::new(
                    i,
                    &[("weather", ["clear", "snow"][(i % 2) as usize])],
                    i % 3 == 0,
                )
            })
            .collect();
        let mut by_push = DriftLog::new(&["weather"]);
        for e in entries.clone() {
            by_push.push(e).unwrap();
        }
        let mut by_batch = DriftLog::new(&["weather"]);
        // Warm the dictionaries first, as steady-state window ingest does.
        by_batch.push(entries[0].clone()).unwrap();
        by_batch.push(entries[1].clone()).unwrap();
        let report = by_batch.ingest_batch_with_threads(entries[2..].to_vec(), 4);
        assert_eq!(report.appended, n as usize - 2);
        assert_eq!(report.quarantined, 0);
        assert_eq!(by_batch, by_push);
    }

    #[test]
    fn entry_round_trip() {
        let log = sample_log();
        let e = log.entry(3).unwrap();
        assert_eq!(e.attr("weather"), Some("snow"));
        assert_eq!(e.attr("location"), Some("new-york"));
        assert!(e.drift);
        assert!(log.entry(99).is_err());
    }

    #[test]
    fn count_matching_reproduces_paper_counts() {
        let log = sample_log();
        // {snow}: 2 occurrences, both drifted (Table 3 row 0 inputs).
        let c = log
            .count_matching(&[Attribute::new("weather", "snow")], None)
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (2, 2));
        // {new-york}: 3 occurrences, 2 drifted (Table 3 rank 6).
        let c = log
            .count_matching(&[Attribute::new("location", "new-york")], None)
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (3, 2));
        // {snow, new-york}: 1 occurrence, drifted.
        let c = log
            .count_matching(
                &[
                    Attribute::new("weather", "snow"),
                    Attribute::new("location", "new-york"),
                ],
                None,
            )
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (1, 1));
    }

    #[test]
    fn count_matching_with_mask_override() {
        let log = sample_log();
        let mut mask = log.drift_mask();
        mask.iter_mut().for_each(|m| *m = false);
        let c = log
            .count_matching(&[Attribute::new("weather", "snow")], Some(&mask))
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (2, 0));
    }

    #[test]
    fn count_matching_unknown_value_is_zero_unknown_key_errors() {
        let log = sample_log();
        let c = log
            .count_matching(&[Attribute::new("weather", "hail")], None)
            .unwrap();
        assert_eq!(c, MatchCounts::default());
        assert!(matches!(
            log.count_matching(&[Attribute::new("nope", "x")], None),
            Err(LogError::UnknownKey { .. })
        ));
    }

    #[test]
    fn distinct_values_counts() {
        let log = sample_log();
        let values = log.distinct_values("weather").unwrap();
        let snow = values.iter().find(|(v, _)| v == "snow").unwrap();
        assert_eq!((snow.1.occurrences, snow.1.drifted), (2, 2));
        let clear = values.iter().find(|(v, _)| v == "clear-day").unwrap();
        assert_eq!((clear.1.occurrences, clear.1.drifted), (3, 1));
    }

    #[test]
    fn rows_matching_returns_indices() {
        let log = sample_log();
        let rows = log
            .rows_matching(&[Attribute::new("device_id", "android_21")])
            .unwrap();
        assert_eq!(rows, vec![1, 2, 3]);
    }

    #[test]
    fn window_filters_by_timestamp() {
        let log = sample_log();
        let morning = log.window(0, 7 * 3600);
        assert_eq!(morning.num_rows(), 3);
        assert_eq!(morning.num_drifted(), 1);
    }

    #[test]
    fn serde_round_trip_preserves_queries() {
        let log = sample_log();
        let json = serde_json::to_string(&log).unwrap();
        let back: DriftLog = serde_json::from_str(&json).unwrap();
        // The index is not serialized; queries fall back to full scans.
        assert_eq!(back.num_segments(), 0);
        let c = back
            .count_matching(&[Attribute::new("weather", "snow")], None)
            .unwrap();
        assert_eq!((c.occurrences, c.drifted), (2, 2));
        assert_eq!(back.num_rows(), 5);
        assert_eq!(back, log);
    }

    #[test]
    fn deserialized_log_accepts_new_rows() {
        let log = sample_log();
        let json = serde_json::to_string(&log).unwrap();
        let mut back: DriftLog = serde_json::from_str(&json).unwrap();
        back.push(DriftLogEntry::new(
            99,
            &[
                ("weather", "snow"),
                ("location", "tibet"),
                ("device_id", "android_1"),
            ],
            true,
        ))
        .unwrap();
        // Interning must still unify with pre-existing dictionary entries,
        // and the first mutation rebuilds the segment index.
        assert!(back.num_segments() > 0);
        let c = back
            .count_matching(&[Attribute::new("weather", "snow")], None)
            .unwrap();
        assert_eq!(c.occurrences, 3);
    }

    #[test]
    fn group_counts_sorts_by_occurrence() {
        let log = sample_log();
        let groups = log.group_counts("weather").unwrap();
        assert_eq!(groups[0].0, "clear-day");
        assert_eq!(groups[0].1.occurrences, 3);
        assert_eq!(groups[1].0, "snow");
        for pair in groups.windows(2) {
            assert!(pair[0].1.occurrences >= pair[1].1.occurrences);
        }
    }

    #[test]
    fn retain_last_keeps_newest_rows() {
        let mut log = sample_log();
        log.retain_last(2);
        assert_eq!(log.num_rows(), 2);
        // The two snow rows (the most recent) survive.
        let c = log
            .count_matching(&[Attribute::new("weather", "snow")], None)
            .unwrap();
        assert_eq!(c.occurrences, 2);
        // Retaining more than present is a no-op.
        log.retain_last(10);
        assert_eq!(log.num_rows(), 2);
    }

    #[test]
    fn segments_split_and_queries_agree_with_scan() {
        // 10 rows at 3 rows/segment: segments of 3, 3, 3, 1.
        let mut log = DriftLog::new(&["k", "j"]).with_segment_rows(3);
        for i in 0..10u64 {
            log.push(DriftLogEntry::new(
                i,
                &[
                    ("k", if i % 2 == 0 { "even" } else { "odd" }),
                    ("j", if i % 3 == 0 { "fizz" } else { "buzz" }),
                ],
                i % 4 == 0,
            ))
            .unwrap();
        }
        assert_eq!(log.num_segments(), 4);
        let mut scan = log.clone();
        scan.set_index_enabled(false);
        assert_eq!(scan.num_segments(), 0);
        for set in [
            vec![],
            vec![Attribute::new("k", "even")],
            vec![Attribute::new("k", "odd"), Attribute::new("j", "fizz")],
            vec![Attribute::new("k", "nope")],
        ] {
            assert_eq!(
                log.count_matching(&set, None).unwrap(),
                scan.count_matching(&set, None).unwrap(),
                "set {set:?}"
            );
            assert_eq!(
                log.rows_matching(&set).unwrap(),
                scan.rows_matching(&set).unwrap(),
                "set {set:?}"
            );
        }
        assert_eq!(
            log.distinct_values("j").unwrap(),
            scan.distinct_values("j").unwrap()
        );
        assert_eq!(log.num_drifted(), scan.num_drifted());
    }

    #[test]
    fn retain_last_rebuilds_boundary_segment() {
        let mut log = DriftLog::new(&["k"]).with_segment_rows(4);
        for i in 0..10u64 {
            log.push(DriftLogEntry::new(
                i,
                &[("k", if i < 5 { "a" } else { "b" })],
                i >= 8,
            ))
            .unwrap();
        }
        // Drop 3 rows: head segment [0,4) straddles the cut and rebuilds.
        log.retain_last(7);
        assert_eq!(log.num_rows(), 7);
        let c = log
            .count_matching(&[Attribute::new("k", "a")], None)
            .unwrap();
        assert_eq!(c.occurrences, 2); // rows 3, 4 survive
        assert_eq!(
            log.rows_matching(&[Attribute::new("k", "b")]).unwrap(),
            vec![2, 3, 4, 5, 6]
        );
        assert_eq!(log.num_drifted(), 2);
    }

    proptest::proptest! {
        #[test]
        fn counts_never_exceed_rows(drifts in proptest::collection::vec(proptest::bool::ANY, 1..60)) {
            let mut log = DriftLog::new(&["k"]);
            for (i, d) in drifts.iter().enumerate() {
                log.push(DriftLogEntry::new(i as u64, &[("k", if i % 3 == 0 { "a" } else { "b" })], *d)).unwrap();
            }
            let c = log.count_matching(&[Attribute::new("k", "a")], None).unwrap();
            proptest::prop_assert!(c.drifted <= c.occurrences);
            proptest::prop_assert!(c.occurrences <= log.num_rows());
        }
    }
}
