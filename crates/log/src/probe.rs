//! Low-level probe API over decoded columnar row blocks.
//!
//! The persistent chunked store (`nazar-store`, DESIGN.md §13) holds drift
//! logs larger than RAM: rows live in compressed columnar chunks on a
//! storage backend, and queries stream one decoded chunk at a time. This
//! module is the bridge that lets those streamed chunks run through
//! *exactly* the same per-segment probe machinery the in-memory
//! [`DriftLog`](crate::DriftLog) index uses — posting-list selection,
//! smallest-list walks, direct column verification, LSB-first drift
//! bitmaps — so out-of-core results are bitwise identical to in-memory
//! ones by construction, not by parallel reimplementation.
//!
//! A [`ColumnarBlock`] is built from a decoded chunk's raw columns and
//! indexes them once (one `Segment` worth of posting lists); each probe
//! then answers `count`/`rows`/`value_counts` questions against the block.
//! All row offsets inside the block are local; callers carry the block's
//! global start row and offset results themselves, which is what lets the
//! store shift whole chunks during retention without touching their bytes.

use crate::entry::Attribute;
use crate::store::{probe_segment, segment_count, MatchCounts, Result, Segment};

/// One decoded block of dictionary-encoded rows plus its probe index.
///
/// Equivalent to one [`DriftLog`](crate::DriftLog) index segment, except
/// the columnar data is owned by the block (a decoded storage chunk)
/// instead of borrowed from the log's global columns.
#[derive(Debug, Clone)]
pub struct ColumnarBlock {
    /// Per-column dict codes, one `Vec<u32>` per schema column, all of the
    /// same length (the block's row count).
    columns: Vec<Vec<u32>>,
    /// Per-row timestamps.
    timestamps: Vec<u64>,
    /// The posting-list index over the block (local rows, `start == 0`).
    seg: Segment,
}

impl ColumnarBlock {
    /// Builds a block (and its probe index) over decoded columnar data.
    /// `columns` must all have the same length as `drift` and `timestamps`;
    /// rows beyond the shortest column are ignored.
    pub fn build(columns: Vec<Vec<u32>>, drift: &[bool], timestamps: &[u64]) -> ColumnarBlock {
        let rows = columns
            .iter()
            .map(Vec::len)
            .chain([drift.len(), timestamps.len()])
            .min()
            .unwrap_or(0);
        let mut seg = Segment::new(0, columns.len());
        for row in 0..rows {
            seg.push_row(&columns, row, drift[row], timestamps[row]);
        }
        ColumnarBlock {
            columns,
            timestamps: timestamps[..rows].to_vec(),
            seg,
        }
    }

    /// Rows in the block.
    pub fn rows(&self) -> usize {
        self.timestamps.len()
    }

    /// Drift-flagged rows in the block.
    pub fn drifted(&self) -> usize {
        self.seg.drifted_count()
    }

    /// The block's per-row timestamps (local row order).
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps
    }

    /// The dict codes of column `ci`, one per local row.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range for the block's columns.
    pub fn column_codes(&self, ci: usize) -> &[u32] {
        &self.columns[ci]
    }

    /// Whether local row `row` is drift-flagged (false out of range).
    pub fn drift_flag(&self, row: usize) -> bool {
        row < self.rows() && self.seg.drifted_bit(row as u32)
    }

    /// `COUNT(*)` / `COUNT(*) WHERE drift` over the block for resolved
    /// predicates. `mask` (when given) is indexed by *local* row and
    /// overrides the stored drift flags, exactly as
    /// [`DriftLog::count_matching`](crate::DriftLog::count_matching) treats
    /// its mask; rows beyond the mask's length count as not drifted.
    pub fn count_matching(&self, preds: &[(usize, u32)], mask: Option<&[bool]>) -> MatchCounts {
        segment_count(&self.columns, &self.seg, preds, mask)
    }

    /// Appends the *local* rows matching every predicate to `out`, in
    /// ascending row order. An empty predicate set matches every row.
    pub fn rows_matching(&self, preds: &[(usize, u32)], out: &mut Vec<usize>) {
        if preds.is_empty() {
            out.extend(0..self.rows());
            return;
        }
        probe_segment(&self.columns, &self.seg, preds, |_, row| out.push(row));
    }

    /// Adds the block's per-value `(occurrences, drifted)` contributions
    /// for column `ci` into `counts` (indexed by dict code). Codes beyond
    /// `counts.len()` are ignored.
    pub fn accumulate_value_counts(&self, ci: usize, counts: &mut [MatchCounts]) {
        self.seg.accumulate_value_counts(ci, counts);
    }
}

/// Re-exported predicate resolution result type, for store signatures.
pub type ResolvedPredicates = Option<Vec<(usize, u32)>>;

/// Resolves `set` against a schema + dictionary value lists without a
/// [`DriftLog`](crate::DriftLog) instance — the form the persistent store
/// uses when it holds dictionaries from a manifest.
///
/// `Ok(None)` means some value never occurs (the query matches nothing).
///
/// # Errors
///
/// Returns [`crate::LogError::UnknownKey`] for keys outside `schema`.
pub fn resolve_predicates_in(
    schema: &[String],
    dict_values: &[Vec<String>],
    set: &[Attribute],
) -> Result<ResolvedPredicates> {
    let mut preds = Vec::with_capacity(set.len());
    for attr in set {
        let ci = schema.iter().position(|k| k == &attr.key).ok_or_else(|| {
            crate::store::LogError::UnknownKey {
                key: attr.key.clone(),
            }
        })?;
        match dict_values
            .get(ci)
            .and_then(|vals| vals.iter().position(|v| v == &attr.value))
        {
            Some(code) => preds.push((ci, code as u32)),
            None => return Ok(None),
        }
    }
    Ok(Some(preds))
}
