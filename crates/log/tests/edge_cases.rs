//! Edge cases for windowing and retention — the incremental-maintenance
//! paths that shift or rebuild index segments (ISSUE 5 satellite).

use nazar_log::{Attribute, DriftLog, DriftLogEntry, MatchCounts};

fn log_with(rows: usize, segment_rows: usize) -> DriftLog {
    let mut log = DriftLog::new(&["k"]).with_segment_rows(segment_rows);
    for i in 0..rows {
        log.push(DriftLogEntry::new(
            i as u64,
            &[("k", if i % 2 == 0 { "even" } else { "odd" })],
            i % 3 == 0,
        ))
        .expect("schema matches");
    }
    log
}

fn count(log: &DriftLog, value: &str) -> MatchCounts {
    log.count_matching(&[Attribute::new("k", value)], None)
        .expect("known key")
}

#[test]
fn window_of_empty_log_is_empty() {
    let log = DriftLog::new(&["k"]);
    let w = log.window(0, 100);
    assert!(w.is_empty());
    assert_eq!(w.schema(), log.schema());
    assert_eq!(w.num_segments(), 0);
}

#[test]
fn window_with_inverted_range_is_empty() {
    let log = log_with(10, 4);
    let w = log.window(8, 3);
    assert!(w.is_empty());
    // Degenerate equal bounds too: [t, t) is empty by construction.
    assert!(log.window(5, 5).is_empty());
}

#[test]
fn window_beyond_max_timestamp_is_empty() {
    let log = log_with(10, 4);
    let w = log.window(1_000, 2_000);
    assert!(w.is_empty());
    assert_eq!(w.num_segments(), 0);
}

#[test]
fn window_covering_everything_copies_everything() {
    let log = log_with(10, 4);
    let w = log.window(0, u64::MAX);
    assert_eq!(w.num_rows(), 10);
    assert_eq!(w.num_drifted(), log.num_drifted());
    assert_eq!(count(&w, "even"), count(&log, "even"));
    assert!(w.num_segments() > 0);
}

#[test]
fn window_boundaries_are_half_open() {
    let log = log_with(10, 4);
    // [3, 7) keeps timestamps 3..=6.
    let w = log.window(3, 7);
    assert_eq!(w.num_rows(), 4);
    let rows = w
        .rows_matching(&[Attribute::new("k", "odd")])
        .expect("known key");
    // Original rows 3, 5 land at window rows 0, 2.
    assert_eq!(rows, vec![0, 2]);
}

#[test]
fn window_agrees_with_scan_fallback() {
    let log = log_with(30, 4);
    let mut scan = log.clone();
    scan.set_index_enabled(false);
    for (t0, t1) in [(0, 30), (5, 25), (29, 30), (30, 31), (7, 7), (25, 5)] {
        let a = log.window(t0, t1);
        let b = scan.window(t0, t1);
        assert_eq!(a.num_rows(), b.num_rows(), "range [{t0},{t1})");
        assert_eq!(a, b, "range [{t0},{t1})");
    }
}

#[test]
fn retain_last_zero_clears_the_log() {
    let mut log = log_with(10, 4);
    log.retain_last(0);
    assert!(log.is_empty());
    assert_eq!(log.num_drifted(), 0);
    assert_eq!(count(&log, "even"), MatchCounts::default());
    // The emptied log still accepts new rows and re-indexes them.
    log.push(DriftLogEntry::new(99, &[("k", "even")], true))
        .expect("schema matches");
    assert_eq!(count(&log, "even").occurrences, 1);
}

#[test]
fn retain_last_at_least_num_rows_is_a_noop() {
    let mut log = log_with(10, 4);
    let before = log.clone();
    log.retain_last(10);
    assert_eq!(log, before);
    log.retain_last(11);
    assert_eq!(log, before);
    assert_eq!(log.num_segments(), 3); // 4 + 4 + 2
}

#[test]
fn retention_exactly_on_a_segment_boundary_drops_whole_segments() {
    let mut log = log_with(12, 4); // segments [0,4) [4,8) [8,12)
    log.retain_last(8); // cut lands exactly on the first boundary
    assert_eq!(log.num_rows(), 8);
    assert_eq!(log.num_segments(), 2);
    // Surviving rows are the original 4..12, re-based to 0..8.
    assert_eq!(
        log.rows_matching(&[Attribute::new("k", "even")])
            .expect("known key"),
        vec![0, 2, 4, 6]
    );
    // Of the drifted rows 0, 3, 6, 9 only 6 and 9 survive the cut.
    assert_eq!(log.num_drifted(), 2);
}

#[test]
fn retention_mid_segment_rebuilds_the_boundary_segment() {
    let mut log = log_with(10, 4);
    let mut scan = log.clone();
    scan.set_index_enabled(false);
    log.retain_last(7);
    scan.retain_last(7);
    assert_eq!(log, scan);
    assert_eq!(count(&log, "even"), count(&scan, "even"));
    assert_eq!(count(&log, "odd"), count(&scan, "odd"));
    assert_eq!(
        log.rows_matching(&[Attribute::new("k", "odd")])
            .expect("known key"),
        scan.rows_matching(&[Attribute::new("k", "odd")])
            .expect("known key")
    );
}

#[test]
fn repeated_retention_and_pushes_stay_consistent() {
    let mut log = DriftLog::new(&["k"]).with_segment_rows(3);
    for round in 0..5u64 {
        for i in 0..7u64 {
            log.push(DriftLogEntry::new(
                round * 100 + i,
                &[("k", if i % 2 == 0 { "even" } else { "odd" })],
                i == 0,
            ))
            .expect("schema matches");
        }
        log.retain_last(10);
    }
    assert_eq!(log.num_rows(), 10);
    let mut scan = log.clone();
    scan.set_index_enabled(false);
    assert_eq!(count(&log, "even"), count(&scan, "even"));
    assert_eq!(
        log.distinct_values("k").expect("known key"),
        scan.distinct_values("k").expect("known key")
    );
}

#[test]
fn retain_last_on_deserialized_log_rebuilds_cleanly() {
    let log = log_with(10, 4);
    let json = serde_json::to_string(&log).expect("serialize");
    let mut back: DriftLog = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.num_segments(), 0); // index not serialized
    back.retain_last(6);
    assert_eq!(back.num_rows(), 6);
    let mut expect = log.clone();
    expect.retain_last(6);
    assert_eq!(back, expect);
    assert_eq!(count(&back, "odd"), count(&expect, "odd"));
}

#[test]
fn window_then_retain_compose() {
    let log = log_with(20, 4);
    let mut w = log.window(5, 15); // rows 5..15, 10 rows
    assert_eq!(w.num_rows(), 10);
    w.retain_last(4); // original rows 11..15
    assert_eq!(w.num_rows(), 4);
    assert_eq!(
        w.rows_matching(&[Attribute::new("k", "odd")])
            .expect("known key"),
        vec![0, 2]
    );
}
