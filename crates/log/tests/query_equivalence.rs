//! Differential query suite: every indexed query must be *exactly* equal —
//! values and ordering — to a naive row-scan reference implemented here,
//! independently of the store's own code, across fan-out widths 1/4/8.
//!
//! `NAZAR_NUM_THREADS` latches once per process, so the width sweep uses
//! the store's explicit `*_with_threads` hooks; the CI `test-matrix` job
//! additionally re-runs the whole tier-1 suite under `NAZAR_NUM_THREADS=1`
//! and `=8` in separate processes and diffs the output.

use nazar_log::{Attribute, DriftLog, DriftLogEntry, MatchCounts};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

const THREAD_WIDTHS: [usize; 3] = [1, 4, 8];

/// A randomly generated log workload: schema, rows, and a drift-mask
/// override of arbitrary (possibly short or over-long) length.
#[derive(Debug, Clone)]
struct Workload {
    schema: Vec<String>,
    rows: Vec<(u64, Vec<usize>, bool)>, // (timestamp, value id per column, drift)
    mask: Vec<bool>,
    segment_rows: usize,
}

fn value_name(v: usize) -> String {
    format!("v{v}")
}

/// Hand-rolled strategy (the vendored proptest has no `prop_flat_map`):
/// draws schema width, value cardinality, segment size, rows, and a mask
/// whose length is independent of the row count.
#[derive(Debug, Clone, Copy)]
struct WorkloadStrategy;

impl Strategy for WorkloadStrategy {
    type Value = Workload;

    fn generate(&self, rng: &mut TestRng) -> Workload {
        let n_cols = 1 + rng.below(3) as usize;
        let n_vals = 1 + rng.below(4);
        let segment_rows = 1 + rng.below(7) as usize;
        let n_rows = rng.below(40) as usize;
        let rows = (0..n_rows)
            .map(|_| {
                (
                    rng.below(50),
                    (0..n_cols).map(|_| rng.below(n_vals) as usize).collect(),
                    rng.next_u64() & 1 == 1,
                )
            })
            .collect();
        let mask_len = rng.below(50) as usize;
        let mask = (0..mask_len).map(|_| rng.next_u64() & 1 == 1).collect();
        Workload {
            schema: (0..n_cols).map(|c| format!("key{c}")).collect(),
            rows,
            mask,
            segment_rows,
        }
    }
}

fn workload() -> WorkloadStrategy {
    WorkloadStrategy
}

fn build(w: &Workload) -> DriftLog {
    let keys: Vec<&str> = w.schema.iter().map(|s| s.as_str()).collect();
    let mut log = DriftLog::new(&keys).with_segment_rows(w.segment_rows);
    for (ts, vals, drift) in &w.rows {
        let attrs: Vec<(String, String)> = w
            .schema
            .iter()
            .zip(vals)
            .map(|(k, &v)| (k.clone(), value_name(v)))
            .collect();
        let attrs_ref: Vec<(&str, &str)> = attrs
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        log.push(DriftLogEntry::new(*ts, &attrs_ref, *drift))
            .expect("workload rows match schema");
    }
    log
}

/// The naive reference: a straight row scan over the raw workload rows,
/// sharing no code with the store's query engine.
mod reference {
    use super::*;

    fn row_matches(w: &Workload, row: usize, set: &[Attribute]) -> bool {
        set.iter().all(|attr| {
            w.schema
                .iter()
                .position(|k| k == &attr.key)
                .is_some_and(|ci| value_name(w.rows[row].1[ci]) == attr.value)
        })
    }

    pub fn count_matching(w: &Workload, set: &[Attribute], mask: Option<&[bool]>) -> MatchCounts {
        let mut counts = MatchCounts::default();
        for row in 0..w.rows.len() {
            if !row_matches(w, row, set) {
                continue;
            }
            counts.occurrences += 1;
            let drifted = match mask {
                Some(m) => m.get(row).copied().unwrap_or(false),
                None => w.rows[row].2,
            };
            if drifted {
                counts.drifted += 1;
            }
        }
        counts
    }

    pub fn rows_matching(w: &Workload, set: &[Attribute]) -> Vec<usize> {
        (0..w.rows.len())
            .filter(|&row| row_matches(w, row, set))
            .collect()
    }

    /// Distinct values of a column in first-occurrence order (the dict
    /// interning order), with counts.
    pub fn distinct_values(w: &Workload, ci: usize) -> Vec<(String, MatchCounts)> {
        let mut out: Vec<(String, MatchCounts)> = Vec::new();
        for (_, vals, drift) in &w.rows {
            let name = value_name(vals[ci]);
            let entry = match out.iter_mut().find(|(v, _)| v == &name) {
                Some(e) => e,
                None => {
                    out.push((name, MatchCounts::default()));
                    out.last_mut().expect("just pushed")
                }
            };
            entry.1.occurrences += 1;
            if *drift {
                entry.1.drifted += 1;
            }
        }
        out
    }

    pub fn group_counts(w: &Workload, ci: usize) -> Vec<(String, MatchCounts)> {
        let mut values = distinct_values(w, ci);
        values.retain(|(_, c)| c.occurrences > 0);
        values.sort_by(|a, b| b.1.occurrences.cmp(&a.1.occurrences).then(a.0.cmp(&b.0)));
        values
    }
}

/// Query sets exercising hits, misses, multi-key intersections, and
/// unknown values.
fn query_sets(w: &Workload) -> Vec<Vec<Attribute>> {
    let mut sets = vec![
        Vec::new(),
        vec![Attribute::new("key0", value_name(0))],
        vec![Attribute::new("key0", "never-interned")],
    ];
    if w.schema.len() >= 2 {
        sets.push(vec![
            Attribute::new("key0", value_name(0)),
            Attribute::new("key1", value_name(1)),
        ]);
        sets.push(vec![
            Attribute::new("key1", value_name(2)),
            Attribute::new("key0", value_name(0)),
        ]);
    }
    if w.schema.len() >= 3 {
        sets.push(vec![
            Attribute::new("key0", value_name(0)),
            Attribute::new("key1", value_name(0)),
            Attribute::new("key2", value_name(0)),
        ]);
    }
    sets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_queries_equal_naive_scan_at_all_widths(w in workload()) {
        let log = build(&w);
        prop_assert!(log.num_segments() > 0 || log.is_empty());
        for set in query_sets(&w) {
            let want = reference::count_matching(&w, &set, None);
            let want_masked = reference::count_matching(&w, &set, Some(&w.mask));
            let want_rows = reference::rows_matching(&w, &set);
            for threads in THREAD_WIDTHS {
                prop_assert_eq!(
                    log.count_matching_with_threads(&set, None, threads).expect("known keys"),
                    want
                );
                prop_assert_eq!(
                    log.count_matching_with_threads(&set, Some(&w.mask), threads)
                        .expect("known keys"),
                    want_masked
                );
                prop_assert_eq!(
                    log.rows_matching_with_threads(&set, threads).expect("known keys"),
                    want_rows.clone()
                );
            }
        }
        for (ci, key) in w.schema.iter().enumerate() {
            let want = reference::distinct_values(&w, ci);
            for threads in THREAD_WIDTHS {
                prop_assert_eq!(
                    log.distinct_values_with_threads(key, threads).expect("known key"),
                    want.clone()
                );
            }
            prop_assert_eq!(
                log.group_counts(key).expect("known key"),
                reference::group_counts(&w, ci)
            );
        }
    }

    #[test]
    fn disabled_index_agrees_with_indexed_paths(w in workload()) {
        let log = build(&w);
        let mut scan = log.clone();
        scan.set_index_enabled(false);
        prop_assert_eq!(scan.num_segments(), 0);
        for set in query_sets(&w) {
            prop_assert_eq!(
                log.count_matching(&set, None).expect("known keys"),
                scan.count_matching(&set, None).expect("known keys")
            );
            prop_assert_eq!(
                log.rows_matching(&set).expect("known keys"),
                scan.rows_matching(&set).expect("known keys")
            );
        }
        prop_assert_eq!(log.num_drifted(), scan.num_drifted());
    }

    #[test]
    fn serde_round_trip_then_mutation_matches_reference(w in workload()) {
        let log = build(&w);
        let json = serde_json::to_string(&log).expect("serialize");
        let back: DriftLog = serde_json::from_str(&json).expect("deserialize");
        // Deserialized logs have no index and answer via full scans.
        prop_assert_eq!(back.num_segments(), 0);
        for set in query_sets(&w) {
            prop_assert_eq!(
                back.count_matching(&set, None).expect("known keys"),
                reference::count_matching(&w, &set, None)
            );
        }
    }
}
