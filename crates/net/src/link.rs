//! Deterministic per-device link models on a virtual clock.
//!
//! All time in this crate is **virtual microseconds**: the simulator never
//! sleeps, so a 20%-loss, 200ms-latency fleet round costs the same wall
//! clock as a perfect one. Each device owns one [`SimLink`] per direction,
//! seeded from the master seed and a stable hash of the device id, so a
//! run is bit-reproducible for a given seed regardless of device insertion
//! order or host thread count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fault and delay model of one direction of a device↔cloud link.
///
/// The default is a **perfect link** — zero latency, unlimited bandwidth,
/// no loss/duplication/reordering — under which the transport subsystem is
/// bitwise-equivalent to direct in-process calls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Base one-way propagation delay, µs.
    pub latency_us: u64,
    /// Uniform extra delay in `[0, jitter_us]`, µs.
    pub jitter_us: u64,
    /// Serialization bandwidth in bytes/second (`None` = unlimited).
    pub bandwidth_bps: Option<u64>,
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Probability a delivered frame is delivered twice.
    pub duplicate: f64,
    /// Probability a delivered frame is held back long enough to be
    /// overtaken by later frames.
    pub reorder: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::perfect()
    }
}

impl LinkConfig {
    /// The perfect link: instant, lossless, in-order.
    pub fn perfect() -> Self {
        LinkConfig {
            latency_us: 0,
            jitter_us: 0,
            bandwidth_bps: None,
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
        }
    }

    /// Whether this link can never drop, delay, duplicate or reorder.
    pub fn is_perfect(&self) -> bool {
        self.latency_us == 0
            && self.jitter_us == 0
            && self.bandwidth_bps.is_none()
            && self.loss == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
    }

    /// Reads the `NAZAR_NET_*` environment knobs over the perfect-link
    /// defaults:
    ///
    /// | variable              | meaning                              |
    /// |-----------------------|--------------------------------------|
    /// | `NAZAR_NET_LOSS`      | drop probability in `[0, 1]`         |
    /// | `NAZAR_NET_DUP`       | duplication probability in `[0, 1]`  |
    /// | `NAZAR_NET_REORDER`   | reorder probability in `[0, 1]`      |
    /// | `NAZAR_NET_LATENCY_US`| one-way delay, µs                    |
    /// | `NAZAR_NET_JITTER_US` | uniform extra delay bound, µs        |
    /// | `NAZAR_NET_BW`        | bandwidth, bytes/s (`0` = unlimited) |
    ///
    /// Unset or unparsable values keep the default, so existing runs are
    /// bitwise unchanged unless a knob is explicitly set.
    pub fn from_env() -> Self {
        fn prob(name: &str) -> Option<f64> {
            std::env::var(name)
                .ok()?
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|p| (0.0..=1.0).contains(p))
        }
        fn int(name: &str) -> Option<u64> {
            std::env::var(name).ok()?.trim().parse::<u64>().ok()
        }
        let mut cfg = LinkConfig::perfect();
        if let Some(p) = prob("NAZAR_NET_LOSS") {
            cfg.loss = p;
        }
        if let Some(p) = prob("NAZAR_NET_DUP") {
            cfg.duplicate = p;
        }
        if let Some(p) = prob("NAZAR_NET_REORDER") {
            cfg.reorder = p;
        }
        if let Some(v) = int("NAZAR_NET_LATENCY_US") {
            cfg.latency_us = v;
        }
        if let Some(v) = int("NAZAR_NET_JITTER_US") {
            cfg.jitter_us = v;
        }
        if let Some(v) = int("NAZAR_NET_BW") {
            cfg.bandwidth_bps = if v == 0 { None } else { Some(v) };
        }
        cfg
    }
}

/// What happened to one transmitted frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transmission {
    /// Virtual times at which copies of the frame arrive (empty = lost;
    /// two entries = duplicated).
    pub deliveries: Vec<u64>,
    /// Whether the frame was dropped by the loss model.
    pub lost: bool,
    /// Whether an extra copy was generated.
    pub duplicated: bool,
    /// Whether the reorder model delayed the frame past its natural slot.
    pub reordered: bool,
}

/// One direction of a simulated link: applies bandwidth serialization,
/// latency/jitter, loss, duplication and reordering to frames.
#[derive(Debug, Clone)]
pub struct SimLink {
    config: LinkConfig,
    rng: SmallRng,
    /// Virtual time at which the link's serializer frees up.
    busy_until: u64,
}

/// FNV-1a over a byte string; used to derive stable per-device seeds.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl SimLink {
    /// A link with the given fault model, seeded deterministically.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        SimLink {
            config,
            rng: SmallRng::seed_from_u64(seed),
            busy_until: 0,
        }
    }

    /// The link's fault model.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Transmits a frame of `len` bytes at virtual time `now`, returning
    /// when (and whether) copies arrive at the far end.
    ///
    /// Even lost frames consume serialization time and wire bytes — the
    /// radio transmitted them; the far end just never saw them.
    pub fn transmit(&mut self, now: u64, len: usize) -> Transmission {
        let mut t = Transmission::default();
        let start = now.max(self.busy_until);
        let tx_us = match self.config.bandwidth_bps {
            Some(bps) if bps > 0 => (len as u64).saturating_mul(1_000_000) / bps.max(1),
            _ => 0,
        };
        self.busy_until = start + tx_us;
        let mut arrival = self.busy_until + self.config.latency_us;
        if self.config.jitter_us > 0 {
            arrival += self.rng.gen_range(0..=self.config.jitter_us);
        }

        // Loss, duplication and reorder draws happen unconditionally so the
        // RNG stream (and therefore the whole run) is identical across
        // configurations that only change probabilities.
        let lost = self.rng.gen_range(0.0f64..1.0) < self.config.loss;
        let duplicated = self.rng.gen_range(0.0f64..1.0) < self.config.duplicate;
        let reordered = self.rng.gen_range(0.0f64..1.0) < self.config.reorder;
        let reorder_extra = self
            .rng
            .gen_range(0..=(4 * self.config.latency_us + self.config.jitter_us + 1_000));

        if lost {
            t.lost = true;
            return t;
        }
        if reordered {
            t.reordered = true;
            arrival += reorder_extra;
        }
        t.deliveries.push(arrival);
        if duplicated {
            t.duplicated = true;
            t.deliveries.push(arrival + 1 + reorder_extra / 2);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_delivers_instantly_in_order() {
        let mut link = SimLink::new(LinkConfig::perfect(), 1);
        for now in [0u64, 5, 9] {
            let t = link.transmit(now, 1500);
            assert_eq!(t.deliveries, vec![now]);
            assert!(!t.lost && !t.duplicated && !t.reordered);
        }
    }

    #[test]
    fn bandwidth_serializes_back_to_back_frames() {
        let cfg = LinkConfig {
            bandwidth_bps: Some(1_000_000), // 1 MB/s => 1 µs per byte
            ..LinkConfig::perfect()
        };
        let mut link = SimLink::new(cfg, 1);
        let a = link.transmit(0, 1000);
        let b = link.transmit(0, 1000);
        assert_eq!(a.deliveries, vec![1000]);
        assert_eq!(b.deliveries, vec![2000], "second frame queues behind first");
    }

    #[test]
    fn full_loss_drops_everything_and_counts_it() {
        let cfg = LinkConfig {
            loss: 1.0,
            ..LinkConfig::perfect()
        };
        let mut link = SimLink::new(cfg, 3);
        for _ in 0..32 {
            let t = link.transmit(0, 100);
            assert!(t.lost);
            assert!(t.deliveries.is_empty());
        }
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let cfg = LinkConfig {
            loss: 0.3,
            duplicate: 0.2,
            reorder: 0.2,
            latency_us: 1000,
            jitter_us: 500,
            ..LinkConfig::perfect()
        };
        let mut a = SimLink::new(cfg, 77);
        let mut b = SimLink::new(cfg, 77);
        for i in 0..64 {
            assert_eq!(a.transmit(i * 10, 200), b.transmit(i * 10, 200));
        }
    }

    #[test]
    fn env_defaults_to_perfect() {
        // No NAZAR_NET_* variables are set in the test environment.
        assert!(LinkConfig::from_env().is_perfect());
    }
}
