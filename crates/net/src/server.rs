//! The cloud-side ingest endpoint: duplicate/reorder-tolerant batch intake.
//!
//! Every upload batch carries a per-device sequence number. The server
//! keeps, per device, the set of sequence numbers ever accepted; redelivery
//! of an already-seen batch (a retry whose first copy *did* arrive, or a
//! link-level duplicate) is acknowledged but not re-ingested, which makes
//! ingest **idempotent** — the property the round-trip proptests pin down.
//! Batches are drained in `(device id, seq)` order, so frame reordering on
//! the wire cannot change the drift log's row order.

use nazar_device::UploadedSample;
use nazar_log::DriftLogEntry;
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of one batch arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Whether the batch had been accepted before (and was ignored now).
    pub duplicate: bool,
}

/// Cloud-side ingest state.
#[derive(Debug, Clone, Default)]
pub struct IngestServer {
    /// Seqs ever accepted, per device (the idempotency filter).
    seen: BTreeMap<String, BTreeSet<u64>>,
    /// Batches accepted since the last [`IngestServer::take_window`] drain,
    /// keyed `(device, seq)` so draining is deterministic under reordering.
    pending: BTreeMap<(String, u64), (Vec<DriftLogEntry>, Vec<UploadedSample>)>,
    duplicates: u64,
}

impl IngestServer {
    /// A fresh ingest endpoint.
    pub fn new() -> Self {
        IngestServer::default()
    }

    /// Accepts one upload batch; duplicates are detected by `(device, seq)`
    /// and ignored.
    pub fn on_upload(
        &mut self,
        device_id: &str,
        seq: u64,
        entries: Vec<DriftLogEntry>,
        samples: Vec<UploadedSample>,
    ) -> IngestOutcome {
        let seen = self.seen.entry(device_id.to_string()).or_default();
        if !seen.insert(seq) {
            self.duplicates += 1;
            return IngestOutcome { duplicate: true };
        }
        self.pending
            .insert((device_id.to_string(), seq), (entries, samples));
        IngestOutcome { duplicate: false }
    }

    /// Batches currently awaiting a window drain.
    pub fn pending_batches(&self) -> usize {
        self.pending.len()
    }

    /// Total duplicate deliveries suppressed so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Drains everything accepted this window, concatenated in
    /// `(device id, seq)` order — independent of arrival order.
    pub fn take_window(&mut self) -> (Vec<DriftLogEntry>, Vec<UploadedSample>) {
        let mut entries = Vec::new();
        let mut samples = Vec::new();
        for (_, (e, s)) in std::mem::take(&mut self.pending) {
            entries.extend(e);
            samples.extend(s);
        }
        (entries, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64) -> DriftLogEntry {
        DriftLogEntry::new(i, &[("weather", "fog")], true)
    }

    #[test]
    fn redelivery_is_idempotent() {
        let mut s = IngestServer::new();
        let first = s.on_upload("d0", 0, vec![entry(1)], vec![]);
        assert!(!first.duplicate);
        let again = s.on_upload("d0", 0, vec![entry(1)], vec![]);
        assert!(again.duplicate);
        assert_eq!(s.duplicates(), 1);
        let (entries, _) = s.take_window();
        assert_eq!(entries.len(), 1, "duplicate must not double-ingest");
    }

    #[test]
    fn drain_order_is_device_then_seq_regardless_of_arrival() {
        let mut s = IngestServer::new();
        s.on_upload("b", 1, vec![entry(31)], vec![]);
        s.on_upload("a", 1, vec![entry(21)], vec![]);
        s.on_upload("b", 0, vec![entry(30)], vec![]);
        s.on_upload("a", 0, vec![entry(20)], vec![]);
        let (entries, _) = s.take_window();
        let ts: Vec<u64> = entries.iter().map(|e| e.timestamp).collect();
        assert_eq!(ts, vec![20, 21, 30, 31]);
    }

    #[test]
    fn seen_set_survives_window_drains() {
        let mut s = IngestServer::new();
        s.on_upload("d0", 0, vec![entry(1)], vec![]);
        let _ = s.take_window();
        // A late duplicate from a previous window is still suppressed.
        assert!(s.on_upload("d0", 0, vec![entry(1)], vec![]).duplicate);
        let (entries, _) = s.take_window();
        assert!(entries.is_empty());
    }
}
