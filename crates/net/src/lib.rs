//! `nazar-net` — the deterministic device↔cloud transport subsystem.
//!
//! Everything the Nazar pipeline moves between devices and the cloud —
//! drift-log batches, uploaded samples, and deployed `VersionMeta` +
//! `BnPatch` payloads — crosses a versioned, checksummed binary wire
//! protocol ([`wire`]) over a simulated network with injectable faults
//! ([`link`]). The simulation runs on a **virtual clock** (no sleeping, no
//! wall time), so experiments with 200 ms RTTs and 20% loss cost the same
//! wall clock as perfect-link runs, and the whole subsystem is
//! bit-reproducible for a given seed regardless of host, thread count, or
//! device insertion order.
//!
//! Layer map:
//!
//! | module       | role                                                  |
//! |--------------|-------------------------------------------------------|
//! | [`wire`]     | framing, checksums, message codecs (no I/O)           |
//! | [`error`]    | typed decode/transport errors — corrupt bytes never panic |
//! | [`link`]     | per-device fault/delay models ([`SimLink`])           |
//! | [`config`]   | [`RetryPolicy`], [`NetConfig`], `NAZAR_NET_*` env knobs |
//! | [`client`]   | device endpoint: outbox, batching, download reassembly |
//! | [`server`]   | cloud endpoint: idempotent, reorder-tolerant ingest   |
//! | [`exchange`] | the event loop tying it together ([`Exchange`])       |
//!
//! The default [`NetConfig`] is a perfect link, under which routing traffic
//! through this crate is bitwise equivalent to direct in-process calls —
//! the property `tests/net_faults.rs` pins down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod config;
pub mod error;
pub mod exchange;
pub mod link;
pub mod server;
pub mod wire;

pub use client::{ClientAction, DeviceClient};
pub use clock::VirtualClock;
pub use config::{NetConfig, RetryPolicy};
pub use error::{NetError, Result};
pub use exchange::{DeployDelivery, Exchange, NetReport, WindowDelivery};
pub use link::{stable_hash, LinkConfig, SimLink, Transmission};
pub use server::{IngestOutcome, IngestServer};
pub use wire::{Message, FRAME_OVERHEAD, MAGIC, VERSION};
