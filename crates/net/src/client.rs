//! The device-side transport endpoint.
//!
//! Owns the bounded upload outbox (drop-oldest backpressure), per-device
//! sequence numbering, and the reassembly state of chunked, resumable
//! patch downloads. All *timing* (when to transmit, when to retry) lives
//! in [`crate::exchange::Exchange`]; the client is pure state, which keeps
//! it trivially deterministic.

use crate::config::NetConfig;
use crate::error::Result;
use crate::wire::{self, Message};
use nazar_device::UploadedSample;
use nazar_log::DriftLogEntry;
use nazar_nn::BnPatch;
use nazar_registry::VersionMeta;
use std::collections::{BTreeMap, VecDeque};

/// One frame awaiting acknowledgement.
#[derive(Debug, Clone)]
pub(crate) struct OutFrame {
    pub seq: u64,
    pub bytes: Vec<u8>,
    /// Transmission attempts so far (0 = not yet sent).
    pub attempts: u32,
}

/// Reassembly state of one in-progress deploy download.
#[derive(Debug, Clone)]
struct Download {
    total_len: u32,
    buf: Vec<u8>,
    /// Received byte ranges `[start, end)`, kept merged and sorted.
    ranges: Vec<(u32, u32)>,
}

impl Download {
    fn new(total_len: u32) -> Self {
        Download {
            total_len,
            buf: vec![0; total_len as usize],
            ranges: Vec::new(),
        }
    }

    fn insert(&mut self, offset: u32, data: &[u8]) {
        let start = offset.min(self.total_len);
        let end = (offset as usize + data.len()).min(self.total_len as usize) as u32;
        if start >= end {
            return;
        }
        self.buf[start as usize..end as usize].copy_from_slice(&data[..(end - start) as usize]);
        self.ranges.push((start, end));
        self.ranges.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.ranges.len());
        for &(s, e) in &self.ranges {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.ranges = merged;
    }

    /// Contiguous bytes received from offset 0 — the resume point.
    fn contiguous(&self) -> u32 {
        match self.ranges.first() {
            Some(&(0, end)) => end,
            _ => 0,
        }
    }
}

/// What a received frame asks the device to do next.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Nothing further (e.g. a duplicate ack).
    None,
    /// An upload batch was acknowledged; stop retrying it.
    UploadAcked {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Send a cumulative chunk acknowledgement back to the cloud.
    SendChunkAck {
        /// The transfer being acknowledged.
        transfer_id: u64,
        /// Contiguous prefix bytes now held.
        received: u32,
    },
    /// A transfer completed and decoded into a deployable version.
    InstallPatch {
        /// The completed transfer.
        transfer_id: u64,
        /// Decoded version metadata.
        meta: VersionMeta,
        /// Decoded BN patch.
        patch: BnPatch,
    },
}

/// Per-device transport endpoint state.
#[derive(Debug, Clone)]
pub struct DeviceClient {
    device_id: String,
    next_seq: u64,
    outbox: VecDeque<OutFrame>,
    downloads: BTreeMap<u64, Download>,
    /// Completed transfers and their lengths, so duplicate chunks after
    /// completion still elicit a final ack instead of a fresh download.
    completed: BTreeMap<u64, u32>,
    /// Batches dropped by outbox backpressure.
    pub(crate) dropped: u64,
}

impl DeviceClient {
    /// A fresh endpoint for `device_id`.
    pub fn new(device_id: impl Into<String>) -> Self {
        DeviceClient {
            device_id: device_id.into(),
            next_seq: 0,
            outbox: VecDeque::new(),
            downloads: BTreeMap::new(),
            completed: BTreeMap::new(),
            dropped: 0,
        }
    }

    /// The device this endpoint belongs to.
    pub fn device_id(&self) -> &str {
        &self.device_id
    }

    /// Frames queued and not yet acknowledged.
    pub fn outbox_depth(&self) -> usize {
        self.outbox.len()
    }

    /// Batches and coalesces `entries` + `samples` into sequence-numbered
    /// upload frames on the outbox, respecting the configured batch limits.
    /// When the bounded outbox would overflow, the *oldest* queued frame is
    /// dropped (fresh telemetry beats stale telemetry on a congested
    /// uplink). Returns the seqs of the newly queued frames.
    pub fn queue_upload(
        &mut self,
        entries: &[DriftLogEntry],
        samples: &[UploadedSample],
        cfg: &NetConfig,
    ) -> Vec<u64> {
        let mut new_seqs = Vec::new();
        let mut e = 0usize;
        let mut s = 0usize;
        while e < entries.len() || s < samples.len() {
            let e_end = (e + cfg.max_batch_entries.max(1)).min(entries.len());
            let s_end = (s + cfg.max_batch_samples.max(1)).min(samples.len());
            let seq = self.next_seq;
            self.next_seq += 1;
            let msg = Message::UploadBatch {
                device_id: self.device_id.clone(),
                seq,
                entries: entries[e..e_end].to_vec(),
                samples: samples[s..s_end].to_vec(),
            };
            e = e_end;
            s = s_end;
            self.outbox.push_back(OutFrame {
                seq,
                bytes: wire::encode_frame(&msg),
                attempts: 0,
            });
            new_seqs.push(seq);
            while self.outbox.len() > cfg.outbox_frames.max(1) {
                let dropped = self.outbox.pop_front().expect("outbox non-empty");
                new_seqs.retain(|&q| q != dropped.seq);
                self.dropped += 1;
            }
        }
        new_seqs
    }

    /// The encoded frame for `seq`, if still queued.
    pub fn frame_bytes(&self, seq: u64) -> Option<&[u8]> {
        self.outbox
            .iter()
            .find(|f| f.seq == seq)
            .map(|f| f.bytes.as_slice())
    }

    /// Records a transmission attempt for `seq`; returns the attempt number
    /// (1-based), or `None` if the frame is no longer queued.
    pub fn mark_attempt(&mut self, seq: u64) -> Option<u32> {
        let f = self.outbox.iter_mut().find(|f| f.seq == seq)?;
        f.attempts += 1;
        Some(f.attempts)
    }

    /// Whether `seq` is still awaiting acknowledgement.
    pub fn is_pending(&self, seq: u64) -> bool {
        self.outbox.iter().any(|f| f.seq == seq)
    }

    /// Transmission attempts recorded for `seq`, if still queued.
    pub fn attempts_of(&self, seq: u64) -> Option<u32> {
        self.outbox
            .iter()
            .find(|f| f.seq == seq)
            .map(|f| f.attempts)
    }

    /// Abandons `seq` after exhausting its retry budget.
    pub fn give_up(&mut self, seq: u64) {
        self.outbox.retain(|f| f.seq != seq);
    }

    /// Drops every queued frame (round cutoff); returns how many were lost.
    pub fn abandon_round(&mut self) -> u64 {
        let n = self.outbox.len() as u64;
        self.outbox.clear();
        n
    }

    /// Handles one frame arriving from the cloud.
    ///
    /// # Errors
    ///
    /// Returns the decode error for corrupt frames (the caller counts it
    /// and drops the frame; a flaky link must never panic the device).
    pub fn on_frame(&mut self, bytes: &[u8]) -> Result<ClientAction> {
        match wire::decode_frame(bytes)? {
            Message::UploadAck { seq } => {
                if self.is_pending(seq) {
                    self.outbox.retain(|f| f.seq != seq);
                    Ok(ClientAction::UploadAcked { seq })
                } else {
                    Ok(ClientAction::None)
                }
            }
            Message::DeployChunk {
                transfer_id,
                offset,
                total_len,
                data,
            } => {
                if let Some(&len) = self.completed.get(&transfer_id) {
                    // Late duplicate after completion: re-ack so the cloud
                    // stops resending.
                    return Ok(ClientAction::SendChunkAck {
                        transfer_id,
                        received: len,
                    });
                }
                let dl = self
                    .downloads
                    .entry(transfer_id)
                    .or_insert_with(|| Download::new(total_len));
                dl.insert(offset, &data);
                let received = dl.contiguous();
                if received == dl.total_len {
                    let dl = self.downloads.remove(&transfer_id).expect("present");
                    self.completed.insert(transfer_id, dl.total_len);
                    let (meta, patch) = wire::decode_deploy_payload(&dl.buf)?;
                    Ok(ClientAction::InstallPatch {
                        transfer_id,
                        meta,
                        patch,
                    })
                } else {
                    Ok(ClientAction::SendChunkAck {
                        transfer_id,
                        received,
                    })
                }
            }
            // Client-bound links never carry these; tolerate them quietly.
            Message::UploadBatch { .. } | Message::ChunkAck { .. } => Ok(ClientAction::None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64) -> DriftLogEntry {
        DriftLogEntry::new(i, &[("weather", "snow")], i.is_multiple_of(2))
    }

    #[test]
    fn batching_splits_large_windows() {
        let mut c = DeviceClient::new("d0");
        let cfg = NetConfig {
            max_batch_entries: 10,
            ..NetConfig::default()
        };
        let entries: Vec<_> = (0..25).map(entry).collect();
        let seqs = c.queue_upload(&entries, &[], &cfg);
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(c.outbox_depth(), 3);
    }

    #[test]
    fn outbox_backpressure_drops_oldest() {
        let mut c = DeviceClient::new("d0");
        let cfg = NetConfig {
            max_batch_entries: 1,
            outbox_frames: 3,
            ..NetConfig::default()
        };
        let entries: Vec<_> = (0..5).map(entry).collect();
        let seqs = c.queue_upload(&entries, &[], &cfg);
        // Seqs 0 and 1 were dropped to make room for 2, 3, 4.
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(c.outbox_depth(), 3);
        assert_eq!(c.dropped, 2);
        assert!(!c.is_pending(0) && c.is_pending(4));
    }

    #[test]
    fn ack_clears_pending_frame_once() {
        let mut c = DeviceClient::new("d0");
        let cfg = NetConfig::default();
        let seqs = c.queue_upload(&[entry(0)], &[], &cfg);
        let ack = wire::encode_frame(&Message::UploadAck { seq: seqs[0] });
        assert_eq!(
            c.on_frame(&ack).unwrap(),
            ClientAction::UploadAcked { seq: seqs[0] }
        );
        assert_eq!(c.on_frame(&ack).unwrap(), ClientAction::None);
        assert_eq!(c.outbox_depth(), 0);
    }

    #[test]
    fn download_reassembles_out_of_order_chunks() {
        use nazar_nn::{MlpResNet, ModelArch};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let mut rng = SmallRng::seed_from_u64(0);
        let mut model = MlpResNet::new(ModelArch::tiny(8, 3), &mut rng);
        let patch = BnPatch::extract(&mut model);
        let meta = VersionMeta::clean();
        let payload = wire::encode_deploy_payload(&meta, &patch);
        let total = payload.len() as u32;

        let mut c = DeviceClient::new("d0");
        let chunk = 16usize;
        let mut offsets: Vec<usize> = (0..payload.len()).step_by(chunk).collect();
        offsets.reverse(); // worst-case reordering
        let mut installed = None;
        for off in offsets {
            let end = (off + chunk).min(payload.len());
            let frame = wire::encode_frame(&Message::DeployChunk {
                transfer_id: 9,
                offset: off as u32,
                total_len: total,
                data: payload[off..end].to_vec(),
            });
            match c.on_frame(&frame).unwrap() {
                ClientAction::InstallPatch {
                    meta: m, patch: p, ..
                } => installed = Some((m, p)),
                ClientAction::SendChunkAck { received, .. } => {
                    assert!(received < total);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        let (m, p) = installed.expect("download completed");
        assert_eq!(m, meta);
        assert_eq!(p, patch);

        // A duplicate chunk after completion re-acks the full length.
        let dup = wire::encode_frame(&Message::DeployChunk {
            transfer_id: 9,
            offset: 0,
            total_len: total,
            data: payload[..chunk].to_vec(),
        });
        assert_eq!(
            c.on_frame(&dup).unwrap(),
            ClientAction::SendChunkAck {
                transfer_id: 9,
                received: total
            }
        );
    }
}
