//! Transport configuration: retry/backoff policy and the top-level knobs.

use crate::link::LinkConfig;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bounded exponential backoff with jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total transmission attempts per frame/transfer (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry, µs.
    pub base_us: u64,
    /// Backoff ceiling, µs.
    pub max_us: u64,
    /// Jitter as a fraction of the computed backoff (`0.2` = ±20% skew
    /// drawn uniformly from `[0, 0.2 * backoff]` and added).
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_us: 100_000,  // 100 ms
            max_us: 3_200_000, // 3.2 s
            jitter_frac: 0.2,
        }
    }
}

impl RetryPolicy {
    /// The backoff to wait after attempt number `attempt` (1-based) fails,
    /// with deterministic jitter drawn from `rng`.
    pub fn backoff_us(&self, attempt: u32, rng: &mut SmallRng) -> u64 {
        let exp = attempt.saturating_sub(1).min(20);
        let base = self
            .base_us
            .saturating_mul(1u64 << exp)
            .min(self.max_us.max(self.base_us));
        let jitter_bound = (base as f64 * self.jitter_frac) as u64;
        // Draw unconditionally so the RNG stream does not depend on the
        // jitter setting.
        let jitter = rng.gen_range(0..=jitter_bound.max(1));
        if jitter_bound == 0 {
            base
        } else {
            base + jitter
        }
    }
}

/// Top-level transport configuration.
///
/// The default routes every exchange through the wire protocol over a
/// **perfect** simulated link (instant, lossless), which is bitwise
/// equivalent to the old direct-call path; fault injection is opt-in via
/// the fields here or the `NAZAR_NET_*` environment knobs
/// ([`NetConfig::from_env`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Fault/delay model, applied to both directions.
    pub link: LinkConfig,
    /// Retry/backoff for unacked uploads and stalled downloads.
    pub retry: RetryPolicy,
    /// Bounded client outbox, in frames; the oldest unsent frame is dropped
    /// when a new batch would overflow it (backpressure).
    pub outbox_frames: usize,
    /// Upload batching: at most this many drift-log entries per frame.
    pub max_batch_entries: usize,
    /// Upload batching: at most this many sampled inputs per frame (their
    /// feature payloads dominate frame size).
    pub max_batch_samples: usize,
    /// Chunk size for resumable patch downloads, bytes.
    pub chunk_bytes: usize,
    /// Per-round straggler cutoff in virtual µs: uploads still undelivered
    /// this long after the round opens are abandoned (`None` = wait for
    /// retries to resolve).
    pub straggler_cutoff_us: Option<u64>,
    /// Master seed for link fault schedules and backoff jitter.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            link: LinkConfig::perfect(),
            retry: RetryPolicy::default(),
            outbox_frames: 256,
            max_batch_entries: 64,
            max_batch_samples: 32,
            chunk_bytes: 4096,
            straggler_cutoff_us: None,
            seed: 0x6E61_7A61, // "naza"
        }
    }
}

impl NetConfig {
    /// The default configuration with the link model (and seed) overridden
    /// by any `NAZAR_NET_*` environment knobs; see [`LinkConfig::from_env`].
    pub fn from_env() -> Self {
        let mut cfg = NetConfig {
            link: LinkConfig::from_env(),
            ..NetConfig::default()
        };
        if let Some(seed) = std::env::var("NAZAR_NET_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            cfg.seed = seed;
        }
        if let Some(us) = std::env::var("NAZAR_NET_CUTOFF_US")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            cfg.straggler_cutoff_us = if us == 0 { None } else { Some(us) };
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let b1 = p.backoff_us(1, &mut rng);
        let b2 = p.backoff_us(2, &mut rng);
        let b3 = p.backoff_us(3, &mut rng);
        assert_eq!(b1, p.base_us);
        assert_eq!(b2, 2 * p.base_us);
        assert_eq!(b3, 4 * p.base_us);
        let b_many = p.backoff_us(30, &mut rng);
        assert_eq!(b_many, p.max_us);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::default();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for attempt in 1..6 {
            let x = p.backoff_us(attempt, &mut a);
            let y = p.backoff_us(attempt, &mut b);
            assert_eq!(x, y);
            let base = (p.base_us << (attempt - 1)).min(p.max_us);
            assert!(x >= base && x <= base + (base as f64 * p.jitter_frac) as u64 + 1);
        }
    }

    #[test]
    fn default_config_is_perfect_link() {
        assert!(NetConfig::default().link.is_perfect());
        assert!(NetConfig::from_env().link.is_perfect());
    }
}
