//! The versioned binary wire protocol.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "NZRF"
//! 4       1     protocol version (currently 1)
//! 5       1     message type
//! 6       4     payload length (u32 LE)
//! 10      n     payload
//! 10+n    4     CRC-32 (IEEE) over bytes [4, 10+n) — version, type, length, payload
//! ```
//!
//! All integers are little-endian; `f32`/`f64` travel as their raw LE bit
//! patterns, so numeric round trips are *exact* (bitwise), which is what
//! keeps the perfect-link transport path bit-identical to the in-process
//! direct-call path. Strings are `u32` length + UTF-8 bytes. Decoding never
//! panics: every violation surfaces as a [`NetError`].

use crate::error::{NetError, Result};
use nazar_data::{Corruption, SimDate};
use nazar_device::UploadedSample;
use nazar_log::{Attribute, DriftLogEntry};
use nazar_nn::{BnLayerState, BnPatch};
use nazar_registry::VersionMeta;
use nazar_tensor::Tensor;

/// The frame magic.
pub const MAGIC: [u8; 4] = *b"NZRF";
/// The protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed per-frame overhead: magic + version + type + length + CRC trailer.
pub const FRAME_OVERHEAD: usize = 4 + 1 + 1 + 4 + 4;

/// Hard cap on decoded collection sizes, so a corrupt length field cannot
/// ask the decoder to allocate gigabytes.
const MAX_ELEMS: usize = 1 << 24;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), small compile-time table.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` LE.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` LE.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` LE.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its raw LE bits.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw LE bits.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(NetError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` LE.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32` LE.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` LE.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` from raw LE bits.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64` from raw LE bits.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| NetError::Utf8)
    }

    fn get_count(&mut self, what: &'static str) -> Result<usize> {
        let n = self.get_u32()? as usize;
        if n > MAX_ELEMS {
            return Err(NetError::Malformed(what));
        }
        Ok(n)
    }

    /// Errors unless every byte was consumed (frames must not carry slack).
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(NetError::Malformed("trailing bytes after message"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// One device→cloud or cloud→device message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Device→cloud: a batch of drift-log entries and sampled inputs,
    /// identified by a per-device sequence number (idempotency key).
    UploadBatch {
        /// Sender device id.
        device_id: String,
        /// Per-device monotonically increasing batch number.
        seq: u64,
        /// Drift-log rows in this batch.
        entries: Vec<DriftLogEntry>,
        /// Sampled inputs riding along for adaptation.
        samples: Vec<UploadedSample>,
    },
    /// Cloud→device: acknowledges an [`Message::UploadBatch`] by seq.
    UploadAck {
        /// Acknowledged batch number.
        seq: u64,
    },
    /// Cloud→device: one chunk of a deploy payload
    /// (`encode_deploy_payload`), resumable by offset.
    DeployChunk {
        /// Transfer identifier (unique per deploy × device).
        transfer_id: u64,
        /// Byte offset of this chunk within the payload.
        offset: u32,
        /// Total payload length, repeated on every chunk so any one chunk
        /// can start a transfer.
        total_len: u32,
        /// The chunk bytes.
        data: Vec<u8>,
    },
    /// Device→cloud: cumulative acknowledgement of a deploy transfer —
    /// `received` is the contiguous prefix length held by the device, the
    /// resume point after a lost chunk.
    ChunkAck {
        /// Transfer identifier being acknowledged.
        transfer_id: u64,
        /// Contiguous bytes received from offset 0.
        received: u32,
    },
}

impl Message {
    fn type_byte(&self) -> u8 {
        match self {
            Message::UploadBatch { .. } => 1,
            Message::UploadAck { .. } => 2,
            Message::DeployChunk { .. } => 3,
            Message::ChunkAck { .. } => 4,
        }
    }
}

// -- field codecs -----------------------------------------------------------

fn put_attrs(w: &mut Writer, attrs: &[Attribute]) {
    w.put_u32(attrs.len() as u32);
    for a in attrs {
        w.put_str(&a.key);
        w.put_str(&a.value);
    }
}

fn get_attrs(r: &mut Reader<'_>) -> Result<Vec<Attribute>> {
    let n = r.get_count("attribute count")?;
    let mut attrs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let key = r.get_str()?;
        let value = r.get_str()?;
        attrs.push(Attribute { key, value });
    }
    Ok(attrs)
}

/// Encodes one drift-log entry into `w`.
pub fn put_entry(w: &mut Writer, e: &DriftLogEntry) {
    w.put_u64(e.timestamp);
    w.put_u8(e.drift as u8);
    put_attrs(w, &e.attrs);
}

/// Decodes one drift-log entry.
pub fn get_entry(r: &mut Reader<'_>) -> Result<DriftLogEntry> {
    let timestamp = r.get_u64()?;
    let drift = match r.get_u8()? {
        0 => false,
        1 => true,
        _ => return Err(NetError::Malformed("drift flag must be 0 or 1")),
    };
    let attrs = get_attrs(r)?;
    Ok(DriftLogEntry {
        timestamp,
        attrs,
        drift,
    })
}

/// Encodes one uploaded sample into `w`.
pub fn put_sample(w: &mut Writer, s: &UploadedSample) {
    w.put_u32(s.features.len() as u32);
    for &f in &s.features {
        w.put_f32(f);
    }
    put_attrs(w, &s.attrs);
    w.put_u16(s.date.day_index());
    w.put_u32(s.label as u32);
    match s.true_cause {
        None => w.put_u8(0),
        Some(c) => {
            w.put_u8(1);
            w.put_str(c.name());
        }
    }
}

/// Decodes one uploaded sample.
pub fn get_sample(r: &mut Reader<'_>) -> Result<UploadedSample> {
    let n = r.get_count("feature count")?;
    let mut features = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        features.push(r.get_f32()?);
    }
    let attrs = get_attrs(r)?;
    let day = r.get_u16()?;
    if day >= SimDate::TOTAL_DAYS {
        return Err(NetError::Malformed("sample date outside simulated range"));
    }
    let date = SimDate::new(day);
    let label = r.get_u32()? as usize;
    let true_cause = match r.get_u8()? {
        0 => None,
        1 => {
            let name = r.get_str()?;
            Some(
                Corruption::from_name(&name)
                    .ok_or(NetError::Malformed("unknown corruption name"))?,
            )
        }
        _ => return Err(NetError::Malformed("cause flag must be 0 or 1")),
    };
    Ok(UploadedSample {
        features,
        attrs,
        date,
        label,
        true_cause,
    })
}

/// Encodes version metadata into `w`.
pub fn put_meta(w: &mut Writer, m: &VersionMeta) {
    put_attrs(w, &m.attrs);
    w.put_f64(m.risk_ratio);
}

/// Decodes version metadata.
pub fn get_meta(r: &mut Reader<'_>) -> Result<VersionMeta> {
    let attrs = get_attrs(r)?;
    let risk_ratio = r.get_f64()?;
    // Re-canonicalize through the constructor so a hand-forged frame cannot
    // smuggle an unsorted attribute set past pool consolidation.
    Ok(VersionMeta::new(attrs, risk_ratio))
}

fn put_bn_vec(w: &mut Writer, t: &Tensor) {
    w.put_u32(t.len() as u32);
    for &v in t.data() {
        w.put_f32(v);
    }
}

fn get_bn_vec(r: &mut Reader<'_>) -> Result<Tensor> {
    let n = r.get_count("bn vector length")?;
    let mut data = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        data.push(r.get_f32()?);
    }
    Tensor::from_vec(data, &[n]).map_err(|_| NetError::Malformed("bn vector shape"))
}

/// Encodes a BN patch into `w`.
///
/// The layout is the contract behind [`BnPatch::encoded_len`]: a `u16`
/// layer count, then per layer four length-prefixed `f32` vectors
/// (γ, β, running mean, running variance).
pub fn put_patch(w: &mut Writer, p: &BnPatch) {
    w.put_u16(p.num_layers() as u16);
    for l in p.layers() {
        put_bn_vec(w, &l.gamma);
        put_bn_vec(w, &l.beta);
        put_bn_vec(w, &l.running_mean);
        put_bn_vec(w, &l.running_var);
    }
}

/// Decodes a BN patch.
pub fn get_patch(r: &mut Reader<'_>) -> Result<BnPatch> {
    let layers = r.get_u16()? as usize;
    let mut out = Vec::with_capacity(layers.min(256));
    for _ in 0..layers {
        let gamma = get_bn_vec(r)?;
        let beta = get_bn_vec(r)?;
        let running_mean = get_bn_vec(r)?;
        let running_var = get_bn_vec(r)?;
        out.push(BnLayerState {
            gamma,
            beta,
            running_mean,
            running_var,
        });
    }
    Ok(BnPatch::from_layers(out))
}

/// Encodes the full deploy payload (meta + patch) that the chunked
/// transfer ships.
pub fn encode_deploy_payload(meta: &VersionMeta, patch: &BnPatch) -> Vec<u8> {
    let mut w = Writer::with_capacity(64 + patch.encoded_len());
    put_meta(&mut w, meta);
    put_patch(&mut w, patch);
    w.into_bytes()
}

/// Decodes a reassembled deploy payload.
pub fn decode_deploy_payload(bytes: &[u8]) -> Result<(VersionMeta, BnPatch)> {
    let mut r = Reader::new(bytes);
    let meta = get_meta(&mut r)?;
    let patch = get_patch(&mut r)?;
    r.finish()?;
    Ok((meta, patch))
}

// -- frame codec ------------------------------------------------------------

/// Encodes one message as a wire frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let mut payload = Writer::with_capacity(128);
    match msg {
        Message::UploadBatch {
            device_id,
            seq,
            entries,
            samples,
        } => {
            payload.put_str(device_id);
            payload.put_u64(*seq);
            payload.put_u32(entries.len() as u32);
            for e in entries {
                put_entry(&mut payload, e);
            }
            payload.put_u32(samples.len() as u32);
            for s in samples {
                put_sample(&mut payload, s);
            }
        }
        Message::UploadAck { seq } => payload.put_u64(*seq),
        Message::DeployChunk {
            transfer_id,
            offset,
            total_len,
            data,
        } => {
            payload.put_u64(*transfer_id);
            payload.put_u32(*offset);
            payload.put_u32(*total_len);
            payload.put_u32(data.len() as u32);
            payload.put_bytes(data);
        }
        Message::ChunkAck {
            transfer_id,
            received,
        } => {
            payload.put_u64(*transfer_id);
            payload.put_u32(*received);
        }
    }
    let payload = payload.into_bytes();

    let mut w = Writer::with_capacity(FRAME_OVERHEAD + payload.len());
    w.put_bytes(&MAGIC);
    w.put_u8(VERSION);
    w.put_u8(msg.type_byte());
    w.put_u32(payload.len() as u32);
    w.put_bytes(&payload);
    let bytes = w.into_bytes();
    let crc = crc32(&bytes[4..]);
    let mut bytes = bytes;
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Decodes one wire frame back into a message.
pub fn decode_frame(bytes: &[u8]) -> Result<Message> {
    let mut r = Reader::new(bytes);
    let magic: [u8; 4] = r.get_bytes(4)?.try_into().unwrap();
    if magic != MAGIC {
        return Err(NetError::BadMagic(magic));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(NetError::UnsupportedVersion(version));
    }
    let msg_type = r.get_u8()?;
    let payload_len = r.get_u32()? as usize;
    if r.remaining() != payload_len + 4 {
        return Err(NetError::Truncated {
            needed: payload_len + 4,
            remaining: r.remaining(),
        });
    }
    let expected = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let actual = crc32(&bytes[4..bytes.len() - 4]);
    if expected != actual {
        return Err(NetError::ChecksumMismatch { expected, actual });
    }

    let mut r = Reader::new(&bytes[10..bytes.len() - 4]);
    let msg = match msg_type {
        1 => {
            let device_id = r.get_str()?;
            let seq = r.get_u64()?;
            let n_entries = r.get_count("entry count")?;
            let mut entries = Vec::with_capacity(n_entries.min(1024));
            for _ in 0..n_entries {
                entries.push(get_entry(&mut r)?);
            }
            let n_samples = r.get_count("sample count")?;
            let mut samples = Vec::with_capacity(n_samples.min(1024));
            for _ in 0..n_samples {
                samples.push(get_sample(&mut r)?);
            }
            Message::UploadBatch {
                device_id,
                seq,
                entries,
                samples,
            }
        }
        2 => Message::UploadAck { seq: r.get_u64()? },
        3 => {
            let transfer_id = r.get_u64()?;
            let offset = r.get_u32()?;
            let total_len = r.get_u32()?;
            let n = r.get_count("chunk length")?;
            let data = r.get_bytes(n)?.to_vec();
            Message::DeployChunk {
                transfer_id,
                offset,
                total_len,
                data,
            }
        }
        4 => Message::ChunkAck {
            transfer_id: r.get_u64()?,
            received: r.get_u32()?,
        },
        t => return Err(NetError::UnknownMessageType(t)),
    };
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip_upload_ack() {
        let msg = Message::UploadAck { seq: 42 };
        let bytes = encode_frame(&msg);
        assert_eq!(decode_frame(&bytes).unwrap(), msg);
        assert_eq!(bytes.len(), FRAME_OVERHEAD + 8);
    }

    #[test]
    fn corrupt_byte_is_an_error_not_a_panic() {
        let msg = Message::UploadBatch {
            device_id: "quebec-dev00".into(),
            seq: 7,
            entries: vec![DriftLogEntry::new(5, &[("weather", "snow")], true)],
            samples: vec![],
        };
        let clean = encode_frame(&msg);
        for i in 0..clean.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = clean.clone();
                bad[i] ^= flip;
                assert!(decode_frame(&bad).is_err(), "flip at byte {i} accepted");
            }
        }
    }

    #[test]
    fn truncated_frame_is_truncated_error() {
        let bytes = encode_frame(&Message::UploadAck { seq: 1 });
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_message_type_is_typed() {
        let mut w = Writer::with_capacity(16);
        w.put_bytes(&MAGIC);
        w.put_u8(VERSION);
        w.put_u8(99);
        w.put_u32(0);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes[4..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(NetError::UnknownMessageType(99)));
    }
}
