//! Typed decode/transport errors.

use std::fmt;

/// Everything that can go wrong decoding a frame or running a transfer.
///
/// Corrupt bytes must surface as values, never panics: the device fleet in
/// the paper's deployment runs over flaky cellular links, and a malformed
/// frame on one device must not take down the cloud ingest loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The buffer ended before the announced content did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// The frame does not start with the `NZRF` magic.
    BadMagic([u8; 4]),
    /// The frame's protocol version is not one this decoder speaks.
    UnsupportedVersion(u8),
    /// The CRC-32 trailer does not match the frame contents.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        expected: u32,
        /// Checksum recomputed over the received bytes.
        actual: u32,
    },
    /// The message-type byte names no known message.
    UnknownMessageType(u8),
    /// A field violated the wire contract (context in the message).
    Malformed(&'static str),
    /// A string field was not valid UTF-8.
    Utf8,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated { needed, remaining } => {
                write!(f, "truncated frame: needed {needed} bytes, had {remaining}")
            }
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            NetError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            NetError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expected:#010x}, computed {actual:#010x}"
                )
            }
            NetError::UnknownMessageType(t) => write!(f, "unknown message type {t:#04x}"),
            NetError::Malformed(what) => write!(f, "malformed field: {what}"),
            NetError::Utf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for NetError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;
