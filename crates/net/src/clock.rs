//! The shared virtual timeline.
//!
//! Every component of the simulation — per-link delivery events inside
//! [`crate::Exchange`] and, since the event-driven fleet scheduler, the
//! fleet's own sample/detect/flush events — runs on one monotone virtual
//! clock counted in microseconds. The clock never sleeps and never reads
//! wall time, so simulated 200 ms RTTs cost nothing, results are
//! bit-reproducible, and a million-device day replays in however long the
//! arithmetic takes.
//!
//! [`VirtualClock`] is deliberately minimal: it only moves **forward**.
//! Components that exchange work (fleet ↔ exchange) synchronise by handing
//! each other their `now_us` and calling [`VirtualClock::advance_to`],
//! which makes "clock skew" between subsystems impossible by construction.

use serde::{Deserialize, Serialize};

/// A monotone virtual clock, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtualClock {
    now_us: u64,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        VirtualClock { now_us: 0 }
    }

    /// Current virtual time, µs.
    pub fn now_us(self) -> u64 {
        self.now_us
    }

    /// Moves the clock forward to `t_us`. Earlier times are ignored — the
    /// clock is monotone, so syncing against another component's clock can
    /// never rewind local time.
    pub fn advance_to(&mut self, t_us: u64) {
        self.now_us = self.now_us.max(t_us);
    }

    /// Moves the clock forward by `delta_us` (saturating).
    pub fn advance_by(&mut self, delta_us: u64) {
        self.now_us = self.now_us.saturating_add(delta_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_to(100);
        assert_eq!(c.now_us(), 100);
        c.advance_to(40);
        assert_eq!(c.now_us(), 100, "advance_to must never rewind");
        c.advance_by(5);
        assert_eq!(c.now_us(), 105);
    }

    #[test]
    fn advance_by_saturates() {
        let mut c = VirtualClock::new();
        c.advance_to(u64::MAX - 1);
        c.advance_by(10);
        assert_eq!(c.now_us(), u64::MAX);
    }
}
