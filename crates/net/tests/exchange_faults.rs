//! Deterministic end-to-end tests of the exchange under injected faults:
//! retries recover lossy uploads, chunked deploys resume through loss, and
//! straggler cutoffs bound a round.

use nazar_log::DriftLogEntry;
use nazar_net::exchange::Exchange;
use nazar_net::{LinkConfig, NetConfig};
use nazar_nn::{BnPatch, MlpResNet, ModelArch};
use nazar_registry::VersionMeta;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn entry(ts: u64) -> DriftLogEntry {
    DriftLogEntry::new(ts, &[("weather", "fog")], ts.is_multiple_of(2))
}

fn lossy(loss: f64) -> NetConfig {
    NetConfig {
        link: LinkConfig {
            latency_us: 50_000,
            jitter_us: 10_000,
            loss,
            duplicate: 0.05,
            reorder: 0.05,
            ..LinkConfig::perfect()
        },
        seed: 42,
        ..NetConfig::default()
    }
}

fn test_patch() -> (VersionMeta, BnPatch) {
    let mut rng = SmallRng::seed_from_u64(0);
    let mut model = MlpResNet::new(ModelArch::tiny(32, 8), &mut rng);
    let patch = BnPatch::extract(&mut model);
    let meta = VersionMeta::new(vec![nazar_log::Attribute::new("weather", "fog")], 2.5);
    (meta, patch)
}

#[test]
fn retries_recover_uploads_through_twenty_percent_loss() {
    let ids: Vec<String> = (0..4).map(|i| format!("dev{i}")).collect();
    let mut ex = Exchange::new(ids.iter().cloned(), lossy(0.2));
    let batches: Vec<(String, Vec<DriftLogEntry>, Vec<_>)> = ids
        .iter()
        .map(|id| (id.clone(), (0..100).map(entry).collect(), vec![]))
        .collect();
    let sent: usize = batches.iter().map(|(_, e, _)| e.len()).sum();
    let delivery = ex.upload_window(batches);
    assert_eq!(
        delivery.entries.len(),
        sent,
        "bounded retry must recover every batch at 20% loss (report: {:?})",
        ex.report()
    );
    let r = ex.report();
    assert!(r.frames_lost > 0, "the loss model must actually fire");
    assert!(r.retries > 0, "recovery must come from retransmissions");
    assert_eq!(r.upload_failures, 0);
}

#[test]
fn chunked_deploy_resumes_through_loss_and_installs_exact_payload() {
    let ids: Vec<String> = (0..3).map(|i| format!("dev{i}")).collect();
    let mut cfg = lossy(0.2);
    cfg.chunk_bytes = 64; // force a many-chunk transfer
    let mut ex = Exchange::new(ids.iter().cloned(), cfg);
    let (meta, patch) = test_patch();
    let delivery = ex.deploy(&ids, &meta, &patch);
    assert_eq!(
        delivery.delivered.len(),
        ids.len(),
        "all transfers must complete (failed: {:?}, report: {:?})",
        delivery.failed,
        ex.report()
    );
    for (_, got_meta, got_patch) in &delivery.delivered {
        assert_eq!(got_meta, &meta, "meta must survive the wire bit-exactly");
        assert_eq!(got_patch, &patch, "patch must survive the wire bit-exactly");
    }
    assert!(
        delivery.payload_len > 2 * 64,
        "test must exercise multiple chunks"
    );
    assert!(ex.report().chunk_resends > 0, "loss must force resends");
}

#[test]
fn straggler_cutoff_bounds_the_round_and_counts_abandoned_frames() {
    let ids: Vec<String> = (0..2).map(|i| format!("dev{i}")).collect();
    let cfg = NetConfig {
        link: LinkConfig {
            latency_us: 200_000, // first retransmit can't land before cutoff
            loss: 1.0,
            ..LinkConfig::perfect()
        },
        straggler_cutoff_us: Some(250_000),
        seed: 7,
        ..NetConfig::default()
    };
    let mut ex = Exchange::new(ids.iter().cloned(), cfg);
    let batches: Vec<(String, Vec<DriftLogEntry>, Vec<_>)> = ids
        .iter()
        .map(|id| (id.clone(), (0..10).map(entry).collect(), vec![]))
        .collect();
    let start = ex.clock_us();
    let delivery = ex.upload_window(batches);
    assert!(delivery.entries.is_empty(), "total loss delivers nothing");
    assert_eq!(delivery.straggler_devices, 2);
    assert!(ex.report().stragglers_dropped > 0);
    assert!(
        ex.clock_us() - start <= 250_000,
        "the round must stop at the cutoff, not wait out the retry budget"
    );
}

#[test]
fn total_deploy_loss_reports_failed_devices() {
    let ids: Vec<String> = vec!["dev0".into()];
    let cfg = NetConfig {
        link: LinkConfig {
            loss: 1.0,
            ..LinkConfig::perfect()
        },
        seed: 3,
        ..NetConfig::default()
    };
    let mut ex = Exchange::new(ids.iter().cloned(), cfg);
    let (meta, patch) = test_patch();
    let delivery = ex.deploy(&ids, &meta, &patch);
    assert!(delivery.delivered.is_empty());
    assert_eq!(delivery.failed, ids);
    assert_eq!(ex.report().deploy_failures, 1);
}
