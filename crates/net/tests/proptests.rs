//! Property-based tests of the wire protocol and the transport fabric:
//! round trips are exact, ingest is idempotent under duplication and
//! reordering, and the whole exchange is deterministic per seed.

use nazar_data::{Corruption, SimDate};
use nazar_device::UploadedSample;
use nazar_log::{Attribute, DriftLogEntry};
use nazar_net::exchange::Exchange;
use nazar_net::{IngestServer, LinkConfig, Message, NetConfig};
use proptest::prelude::*;

const KEYS: [&str; 3] = ["weather", "location", "device_id"];
const VALUES: [&str; 4] = ["snow", "rain", "quebec", "dev03"];

fn entry_from(ts: u64, k: usize, v: usize, drift: bool) -> DriftLogEntry {
    DriftLogEntry::new(ts, &[(KEYS[k % 3], VALUES[v % 4])], drift)
}

fn sample_from(feats: Vec<f32>, day: u16, label: usize, cause: usize) -> UploadedSample {
    UploadedSample {
        features: feats,
        attrs: vec![Attribute::new(KEYS[label % 3], VALUES[cause % 4])],
        date: SimDate::new(day % SimDate::TOTAL_DAYS),
        label,
        true_cause: if cause.is_multiple_of(3) {
            None
        } else {
            Some(Corruption::ALL[cause % Corruption::ALL.len()])
        },
    }
}

/// Applies a deterministic pseudo-permutation of `0..n` driven by `keys`.
fn permuted<T: Clone>(items: &[T], keys: &[u64]) -> Vec<T> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (keys.get(i).copied().unwrap_or(0), i));
    order.iter().map(|&i| items[i].clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every representable upload batch survives encode → decode exactly
    /// (floats travel as raw bits, so equality is bitwise).
    #[test]
    fn upload_batch_round_trips(
        seq in 0u64..1_000_000,
        raw_entries in proptest::collection::vec(
            (0u64..10_000, 0usize..3, 0usize..4, any::<bool>()), 0..20),
        raw_samples in proptest::collection::vec(
            (proptest::collection::vec(-4.0f32..4.0, 1..12), 0u16..112, 0usize..8, 0usize..12),
            0..6),
    ) {
        let msg = Message::UploadBatch {
            device_id: "quebec-dev07".into(),
            seq,
            entries: raw_entries
                .iter()
                .map(|&(ts, k, v, d)| entry_from(ts, k, v, d))
                .collect(),
            samples: raw_samples
                .iter()
                .map(|(f, day, l, c)| sample_from(f.clone(), *day, *l, *c))
                .collect(),
        };
        let bytes = nazar_net::wire::encode_frame(&msg);
        prop_assert_eq!(nazar_net::wire::decode_frame(&bytes).unwrap(), msg);
    }

    /// Degenerate floats — NaN, ±Inf, signed zero, subnormals, the extreme
    /// normals — travel the wire bit-exactly and pass through ingest intact
    /// (satellite 4). The transport neither normalizes nor rejects them;
    /// quarantining non-finite payloads is the cloud's job
    /// (`nazar_cloud::sanitize_uploads`), and it can only do that job if
    /// the wire delivers the poison faithfully instead of laundering it.
    /// `PartialEq` on messages would compare NaN != NaN, so this asserts on
    /// raw bit patterns.
    #[test]
    fn degenerate_floats_round_trip_bitwise(
        seq in 0u64..1_000_000,
        picks in proptest::collection::vec(0usize..8, 1..12),
        day in 0u16..112,
    ) {
        const SPECIALS: [f32; 8] = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            1.0e-40, // subnormal
            f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
        ];
        let feats: Vec<f32> = picks.iter().map(|&i| SPECIALS[i]).collect();
        let bits: Vec<u32> = feats.iter().map(|f| f.to_bits()).collect();
        let msg = Message::UploadBatch {
            device_id: "quebec-dev07".into(),
            seq,
            entries: vec![entry_from(seq, 0, 1, true)],
            samples: vec![sample_from(feats, day, 0, 1)],
        };
        let bytes = nazar_net::wire::encode_frame(&msg);
        let decoded = nazar_net::wire::decode_frame(&bytes).unwrap();
        let Message::UploadBatch { samples, entries, .. } = decoded else {
            return Err(TestCaseError::fail("decoded to a different message kind"));
        };
        prop_assert_eq!(entries.len(), 1);
        prop_assert_eq!(samples.len(), 1);
        let decoded_bits: Vec<u32> = samples[0].features.iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(&decoded_bits, &bits);

        // Ingest passes the payload through unmodified as well.
        let mut server = IngestServer::new();
        server.on_upload("quebec-dev07", seq, vec![], samples);
        let (_, uploads) = server.take_window();
        prop_assert_eq!(uploads.len(), 1);
        let ingested_bits: Vec<u32> = uploads[0].features.iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(ingested_bits, bits);
    }

    /// Ingest is idempotent: any delivery schedule built from a batch set by
    /// duplicating and reordering drains to exactly the in-order ingest of
    /// the unique batches.
    #[test]
    fn ingest_tolerates_duplication_and_reordering(
        batches in proptest::collection::vec((0usize..4, 0u64..6, 0u64..10_000), 1..24),
        dup_flags in proptest::collection::vec(any::<bool>(), 24),
        perm_keys in proptest::collection::vec(0u64..1_000_000, 48),
    ) {
        // Unique (device, seq) batches, each carrying a distinguishable entry.
        let mut unique: Vec<(String, u64, DriftLogEntry)> = Vec::new();
        for &(d, seq, ts) in &batches {
            let device = format!("dev{d}");
            if !unique.iter().any(|(dv, s, _)| dv == &device && *s == seq) {
                unique.push((device, seq, entry_from(ts, d, seq as usize, true)));
            }
        }

        // Reference: in-order, exactly-once delivery.
        let mut reference = IngestServer::new();
        for (device, seq, e) in &unique {
            reference.on_upload(device, *seq, vec![e.clone()], vec![]);
        }
        let expected = reference.take_window();

        // Adversarial schedule: duplicate some batches, then permute all.
        let mut schedule: Vec<(String, u64, DriftLogEntry)> = unique.clone();
        for (i, (device, seq, e)) in unique.iter().enumerate() {
            if dup_flags.get(i).copied().unwrap_or(false) {
                schedule.push((device.clone(), *seq, e.clone()));
            }
        }
        let schedule = permuted(&schedule, &perm_keys);
        let mut server = IngestServer::new();
        let mut dups = 0u64;
        for (device, seq, e) in &schedule {
            if server.on_upload(device, *seq, vec![e.clone()], vec![]).duplicate {
                dups += 1;
            }
        }
        prop_assert_eq!(dups, (schedule.len() - unique.len()) as u64);
        prop_assert_eq!(server.take_window(), expected);
    }

    /// The exchange is a pure function of (config, inputs): the same seed
    /// under the same fault model produces byte-identical deliveries and
    /// wire statistics.
    #[test]
    fn exchange_same_seed_same_outcome(
        loss in 0.0f64..0.4,
        duplicate in 0.0f64..0.3,
        reorder in 0.0f64..0.3,
        seed in 0u64..1_000,
    ) {
        let cfg = NetConfig {
            link: LinkConfig {
                latency_us: 20_000,
                jitter_us: 5_000,
                loss,
                duplicate,
                reorder,
                ..LinkConfig::perfect()
            },
            seed,
            ..NetConfig::default()
        };
        let ids = ["a-0".to_string(), "b-1".to_string(), "c-2".to_string()];
        let batches: Vec<(String, Vec<DriftLogEntry>, Vec<UploadedSample>)> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let entries = (0..10u64).map(|t| entry_from(t, i, i, t.is_multiple_of(2))).collect();
                (id.clone(), entries, vec![])
            })
            .collect();

        let mut a = Exchange::new(ids.iter().cloned(), cfg.clone());
        let mut b = Exchange::new(ids.iter().cloned(), cfg);
        let da = a.upload_window(batches.clone());
        let db = b.upload_window(batches);
        prop_assert_eq!(da.entries, db.entries);
        prop_assert_eq!(da.straggler_devices, db.straggler_devices);
        prop_assert_eq!(a.report(), b.report());
        prop_assert_eq!(a.clock_us(), b.clock_us());
    }

    /// Without loss, duplication and reordering alone can neither drop nor
    /// double-count anything: delivery equals the direct-path concatenation
    /// exactly, in sorted-device order.
    #[test]
    fn lossless_faults_deliver_exactly_once_in_order(
        duplicate in 0.0f64..0.5,
        reorder in 0.0f64..0.5,
        seed in 0u64..1_000,
    ) {
        let cfg = NetConfig {
            link: LinkConfig {
                latency_us: 10_000,
                jitter_us: 3_000,
                duplicate,
                reorder,
                ..LinkConfig::perfect()
            },
            seed,
            ..NetConfig::default()
        };
        let ids = ["a-0".to_string(), "b-1".to_string()];
        let batches: Vec<(String, Vec<DriftLogEntry>, Vec<UploadedSample>)> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| {
                // Enough entries to split into several frames (batch cap 64).
                let entries: Vec<DriftLogEntry> =
                    (0..150u64).map(|t| entry_from(t, i, i, t % 3 == 0)).collect();
                (id.clone(), entries, vec![])
            })
            .collect();
        let expected: Vec<DriftLogEntry> = batches
            .iter()
            .flat_map(|(_, e, _)| e.iter().cloned())
            .collect();

        let mut ex = Exchange::new(ids.iter().cloned(), cfg);
        let delivery = ex.upload_window(batches);
        prop_assert_eq!(delivery.entries, expected);
        prop_assert_eq!(ex.report().frames_lost, 0);
        prop_assert_eq!(delivery.straggler_devices, 0);
    }
}
