//! Property tests: every `*_into` kernel is equivalent to a naive
//! textbook reference across random shapes and data.
//!
//! The kernels are written to accumulate in the same floating-point order
//! as the references (the packed-B matmul walks `p = 0..k` per output
//! element, the reductions walk rows in order), so equality here is exact
//! (`==` per element, which treats `-0.0` and `+0.0` as equal) rather
//! than within a tolerance. A dedicated case checks that the parallel
//! matmul path is bitwise identical to the sequential one for every
//! thread count, which is what makes `NAZAR_NUM_THREADS` a pure
//! performance knob.

use nazar_tensor::{kernels, Workspace};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic random data for a given seed.
fn data(seed: u64, len: usize) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Textbook `[n, k] x [k, m]` matmul in `i, p, j` loop order.
fn naive_matmul(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        for p in 0..k {
            let av = a[i * k + p];
            for j in 0..m {
                out[i * m + j] += av * b[p * m + j];
            }
        }
    }
    out
}

/// Naive transpose of row-major `[n, m]`.
fn naive_transpose(src: &[f32], n: usize, m: usize) -> Vec<f32> {
    let mut dst = vec![0.0f32; n * m];
    for i in 0..n {
        for j in 0..m {
            dst[j * n + i] = src[i * m + j];
        }
    }
    dst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_into_matches_naive(
        n in 1usize..24,
        k in 1usize..24,
        m in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let a = data(seed, n * k);
        let b = data(seed.wrapping_add(1), k * m);
        let mut ws = Workspace::new();
        let mut out = vec![0.0f32; n * m];
        kernels::matmul_into(&a, &b, n, k, m, &mut out, &mut ws);
        prop_assert_eq!(out, naive_matmul(&a, &b, n, k, m));
    }

    #[test]
    fn parallel_matmul_is_bitwise_deterministic(
        n in 1usize..40,
        k in 1usize..24,
        m in 1usize..24,
        threads in 2usize..=8,
        seed in 0u64..1_000,
    ) {
        let a = data(seed, n * k);
        let b = data(seed.wrapping_add(2), k * m);
        let mut ws = Workspace::new();
        let mut sequential = vec![0.0f32; n * m];
        kernels::matmul_into_threads(&a, &b, n, k, m, &mut sequential, &mut ws, 1);
        let mut parallel = vec![0.0f32; n * m];
        kernels::matmul_into_threads(&a, &b, n, k, m, &mut parallel, &mut ws, threads);
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn matmul_at_b_matches_transposed_naive(
        n in 1usize..16,
        k in 1usize..16,
        m in 1usize..16,
        seed in 0u64..1_000,
    ) {
        // out[k, m] += aT · g, accumulated over i in order — identical to
        // transposing a first and running the naive loop.
        let a = data(seed, n * k);
        let g = data(seed.wrapping_add(3), n * m);
        let mut out = vec![0.0f32; k * m];
        kernels::matmul_at_b_into(&a, &g, n, k, m, &mut out);
        let reference = naive_matmul(&naive_transpose(&a, n, k), &g, k, n, m);
        for (&o, &r) in out.iter().zip(&reference) {
            prop_assert!(o == r, "at_b {o} != reference {r}");
        }
    }

    #[test]
    fn matmul_a_bt_matches_transposed_naive(
        n in 1usize..16,
        k in 1usize..16,
        m in 1usize..16,
        seed in 0u64..1_000,
    ) {
        // out[n, k] += g · bT, each element a dot over j in order.
        let g = data(seed, n * m);
        let b = data(seed.wrapping_add(4), k * m);
        let mut out = vec![0.0f32; n * k];
        kernels::matmul_a_bt_into(&g, &b, n, m, k, &mut out);
        let reference = naive_matmul(&g, &naive_transpose(&b, k, m), n, m, k);
        for (&o, &r) in out.iter().zip(&reference) {
            prop_assert!(o == r, "a_bt {o} != reference {r}");
        }
    }

    #[test]
    fn transpose_into_matches_naive_and_round_trips(
        n in 1usize..80,
        m in 1usize..80,
        seed in 0u64..1_000,
    ) {
        let src = data(seed, n * m);
        let mut dst = vec![0.0f32; n * m];
        kernels::transpose_into(&src, n, m, &mut dst);
        prop_assert_eq!(&dst, &naive_transpose(&src, n, m));
        let mut back = vec![0.0f32; n * m];
        kernels::transpose_into(&dst, m, n, &mut back);
        prop_assert_eq!(back, src);
    }

    #[test]
    fn sum_axis0_matches_row_order_accumulation(
        n in 1usize..32,
        d in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let a = data(seed, n * d);
        let mut out = vec![0.0f32; d];
        kernels::sum_axis0_into(&a, n, d, &mut out);
        let mut reference = vec![0.0f32; d];
        for row in a.chunks_exact(d) {
            for (r, &x) in reference.iter_mut().zip(row) {
                *r += x;
            }
        }
        prop_assert_eq!(out, reference);
    }

    #[test]
    fn elementwise_kernels_match_naive(len in 1usize..256, seed in 0u64..1_000) {
        let a = data(seed, len);
        let b = data(seed.wrapping_add(5), len);

        let mut add = vec![0.0f32; len];
        kernels::add_into(&a, &b, &mut add);
        let mut acc = a.clone();
        kernels::add_assign(&mut acc, &b);
        let mut axpy = b.clone();
        kernels::axpy_into(0.5, &a, &mut axpy);
        let mut fma = b.clone();
        kernels::fma_assign(&mut fma, &a, &b);
        let mut mapped = vec![0.0f32; len];
        kernels::map_into(&a, &mut mapped, |x| x * 2.0 + 1.0);
        let mut zipped = vec![0.0f32; len];
        kernels::zip_into(&a, &b, &mut zipped, |x, y| x * y);

        for i in 0..len {
            prop_assert!(add[i] == a[i] + b[i]);
            prop_assert!(acc[i] == a[i] + b[i]);
            prop_assert!(axpy[i] == b[i] + 0.5 * a[i]);
            prop_assert!(fma[i] == b[i] + a[i] * b[i]);
            prop_assert!(mapped[i] == a[i] * 2.0 + 1.0);
            prop_assert!(zipped[i] == a[i] * b[i]);
        }
    }

    #[test]
    fn workspace_recycling_does_not_change_matmul(
        n in 1usize..12,
        k in 1usize..12,
        m in 1usize..12,
        seed in 0u64..1_000,
    ) {
        // A warm workspace (dirty pooled buffers from prior calls) must
        // produce the same result as a cold one.
        let a = data(seed, n * k);
        let b = data(seed.wrapping_add(6), k * m);
        let mut cold = Workspace::new();
        let mut expected = vec![0.0f32; n * m];
        kernels::matmul_into(&a, &b, n, k, m, &mut expected, &mut cold);

        let mut warm = Workspace::new();
        warm.recycle(data(seed.wrapping_add(7), n * m + k * m + 3));
        warm.recycle(vec![7.0f32; k * m]);
        let mut out = vec![0.0f32; n * m];
        kernels::matmul_into(&a, &b, n, k, m, &mut out, &mut warm);
        prop_assert_eq!(out, expected);
    }
}
