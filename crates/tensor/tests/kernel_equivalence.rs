//! Property tests: every `*_into` kernel is equivalent to a naive
//! textbook reference across random shapes and data.
//!
//! The kernels are written to accumulate in the same floating-point order
//! as the references (the packed-B matmul walks `p = 0..k` per output
//! element, the reductions walk rows in order), so equality here is exact
//! (`==` per element, which treats `-0.0` and `+0.0` as equal) rather
//! than within a tolerance. A dedicated case checks that the parallel
//! matmul path is bitwise identical to the sequential one for every
//! thread count, which is what makes `NAZAR_NUM_THREADS` a pure
//! performance knob.

use nazar_tensor::{kernels, simd, SimdTier, Workspace};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic random data for a given seed.
fn data(seed: u64, len: usize) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Textbook `[n, k] x [k, m]` matmul in `i, p, j` loop order.
fn naive_matmul(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        for p in 0..k {
            let av = a[i * k + p];
            for j in 0..m {
                out[i * m + j] += av * b[p * m + j];
            }
        }
    }
    out
}

/// Naive transpose of row-major `[n, m]`.
fn naive_transpose(src: &[f32], n: usize, m: usize) -> Vec<f32> {
    let mut dst = vec![0.0f32; n * m];
    for i in 0..n {
        for j in 0..m {
            dst[j * n + i] = src[i * m + j];
        }
    }
    dst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_into_matches_naive(
        n in 1usize..24,
        k in 1usize..24,
        m in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let a = data(seed, n * k);
        let b = data(seed.wrapping_add(1), k * m);
        let mut ws = Workspace::new();
        let mut out = vec![0.0f32; n * m];
        kernels::matmul_into(&a, &b, n, k, m, &mut out, &mut ws);
        prop_assert_eq!(out, naive_matmul(&a, &b, n, k, m));
    }

    #[test]
    fn parallel_matmul_is_bitwise_deterministic(
        n in 1usize..40,
        k in 1usize..24,
        m in 1usize..24,
        threads in 2usize..=8,
        seed in 0u64..1_000,
    ) {
        let a = data(seed, n * k);
        let b = data(seed.wrapping_add(2), k * m);
        let mut ws = Workspace::new();
        let mut sequential = vec![0.0f32; n * m];
        kernels::matmul_into_threads(&a, &b, n, k, m, &mut sequential, &mut ws, 1);
        let mut parallel = vec![0.0f32; n * m];
        kernels::matmul_into_threads(&a, &b, n, k, m, &mut parallel, &mut ws, threads);
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn matmul_at_b_matches_transposed_naive(
        n in 1usize..16,
        k in 1usize..16,
        m in 1usize..16,
        seed in 0u64..1_000,
    ) {
        // out[k, m] += aT · g, accumulated over i in order — identical to
        // transposing a first and running the naive loop.
        let a = data(seed, n * k);
        let g = data(seed.wrapping_add(3), n * m);
        let mut out = vec![0.0f32; k * m];
        kernels::matmul_at_b_into(&a, &g, n, k, m, &mut out);
        let reference = naive_matmul(&naive_transpose(&a, n, k), &g, k, n, m);
        for (&o, &r) in out.iter().zip(&reference) {
            prop_assert!(o == r, "at_b {o} != reference {r}");
        }
    }

    #[test]
    fn matmul_a_bt_matches_transposed_naive(
        n in 1usize..16,
        k in 1usize..16,
        m in 1usize..16,
        seed in 0u64..1_000,
    ) {
        // out[n, k] += g · bT, each element a dot over j in order.
        let g = data(seed, n * m);
        let b = data(seed.wrapping_add(4), k * m);
        let mut out = vec![0.0f32; n * k];
        kernels::matmul_a_bt_into(&g, &b, n, m, k, &mut out);
        let reference = naive_matmul(&g, &naive_transpose(&b, k, m), n, m, k);
        for (&o, &r) in out.iter().zip(&reference) {
            prop_assert!(o == r, "a_bt {o} != reference {r}");
        }
    }

    #[test]
    fn transpose_into_matches_naive_and_round_trips(
        n in 1usize..80,
        m in 1usize..80,
        seed in 0u64..1_000,
    ) {
        let src = data(seed, n * m);
        let mut dst = vec![0.0f32; n * m];
        kernels::transpose_into(&src, n, m, &mut dst);
        prop_assert_eq!(&dst, &naive_transpose(&src, n, m));
        let mut back = vec![0.0f32; n * m];
        kernels::transpose_into(&dst, m, n, &mut back);
        prop_assert_eq!(back, src);
    }

    #[test]
    fn sum_axis0_matches_row_order_accumulation(
        n in 1usize..32,
        d in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let a = data(seed, n * d);
        let mut out = vec![0.0f32; d];
        kernels::sum_axis0_into(&a, n, d, &mut out);
        let mut reference = vec![0.0f32; d];
        for row in a.chunks_exact(d) {
            for (r, &x) in reference.iter_mut().zip(row) {
                *r += x;
            }
        }
        prop_assert_eq!(out, reference);
    }

    #[test]
    fn elementwise_kernels_match_naive(len in 1usize..256, seed in 0u64..1_000) {
        let a = data(seed, len);
        let b = data(seed.wrapping_add(5), len);

        let mut add = vec![0.0f32; len];
        kernels::add_into(&a, &b, &mut add);
        let mut acc = a.clone();
        kernels::add_assign(&mut acc, &b);
        let mut axpy = b.clone();
        kernels::axpy_into(0.5, &a, &mut axpy);
        let mut fma = b.clone();
        kernels::fma_assign(&mut fma, &a, &b);
        let mut mapped = vec![0.0f32; len];
        kernels::map_into(&a, &mut mapped, |x| x * 2.0 + 1.0);
        let mut zipped = vec![0.0f32; len];
        kernels::zip_into(&a, &b, &mut zipped, |x, y| x * y);

        for i in 0..len {
            prop_assert!(add[i] == a[i] + b[i]);
            prop_assert!(acc[i] == a[i] + b[i]);
            prop_assert!(axpy[i] == b[i] + 0.5 * a[i]);
            prop_assert!(fma[i] == b[i] + a[i] * b[i]);
            prop_assert!(mapped[i] == a[i] * 2.0 + 1.0);
            prop_assert!(zipped[i] == a[i] * b[i]);
        }
    }

    #[test]
    fn workspace_recycling_does_not_change_matmul(
        n in 1usize..12,
        k in 1usize..12,
        m in 1usize..12,
        seed in 0u64..1_000,
    ) {
        // A warm workspace (dirty pooled buffers from prior calls) must
        // produce the same result as a cold one.
        let a = data(seed, n * k);
        let b = data(seed.wrapping_add(6), k * m);
        let mut cold = Workspace::new();
        let mut expected = vec![0.0f32; n * m];
        kernels::matmul_into(&a, &b, n, k, m, &mut expected, &mut cold);

        let mut warm = Workspace::new();
        warm.recycle(data(seed.wrapping_add(7), n * m + k * m + 3));
        warm.recycle(vec![7.0f32; k * m]);
        let mut out = vec![0.0f32; n * m];
        kernels::matmul_into(&a, &b, n, k, m, &mut out, &mut warm);
        prop_assert_eq!(out, expected);
    }

    // ----------------------------------------------------------------
    // SIMD tiers vs the scalar oracle (PR 9)
    // ----------------------------------------------------------------

    #[test]
    fn simd_exact_matmul_is_bitwise_vs_scalar_oracle(
        n in 1usize..48,
        k in 1usize..48,
        m in 1usize..72,
        threads in 1usize..=8,
        seed in 0u64..1_000,
    ) {
        // The exact tier (mul + add, per-lane p-order accumulation) must be
        // *bitwise* identical to the scalar kernel at every shape — panel
        // edges, remainder rows, and all thread widths included.
        let a = data(seed, n * k);
        let b = data(seed.wrapping_add(8), k * m);
        let mut ws = Workspace::new();
        let mut scalar = vec![0.0f32; n * m];
        kernels::matmul_into_tier(&a, &b, n, k, m, &mut scalar, &mut ws, 1, SimdTier::Off);
        let mut vector = vec![f32::NAN; n * m];
        kernels::matmul_into_tier(&a, &b, n, k, m, &mut vector, &mut ws, threads, SimdTier::Exact);
        prop_assert_eq!(vector, scalar);
    }

    #[test]
    fn simd_fast_matmul_is_ulp_bounded_vs_scalar_oracle(
        n in 1usize..48,
        k in 1usize..48,
        m in 1usize..72,
        seed in 0u64..1_000,
    ) {
        // The fast tier contracts one rounding per multiply-add, so the
        // worst-case drift from the oracle scales with the accumulation
        // length k: |fast - scalar| <= |a|·|b| product * k * eps-ish.
        let a = data(seed, n * k);
        let b = data(seed.wrapping_add(9), k * m);
        let mut ws = Workspace::new();
        let mut scalar = vec![0.0f32; n * m];
        kernels::matmul_into_tier(&a, &b, n, k, m, &mut scalar, &mut ws, 1, SimdTier::Off);
        let mut fast = vec![f32::NAN; n * m];
        kernels::matmul_into_tier(&a, &b, n, k, m, &mut fast, &mut ws, 1, SimdTier::Fast);
        let abs_a: Vec<f32> = a.iter().map(|x| x.abs()).collect();
        let abs_b: Vec<f32> = b.iter().map(|x| x.abs()).collect();
        let abs_ref = naive_matmul(&abs_a, &abs_b, n, k, m);
        for i in 0..n * m {
            let tol = 1e-6 + abs_ref[i] * (k as f32) * 1e-6;
            prop_assert!(
                (fast[i] - scalar[i]).abs() <= tol,
                "fast {} vs scalar {} (tol {tol})", fast[i], scalar[i],
            );
        }
    }

    #[test]
    fn bn_eval_kernel_is_bitwise_across_tiers(
        n in 1usize..16,
        d in 1usize..64,
        seed in 0u64..1_000,
    ) {
        let x = data(seed, n * d);
        let mean = data(seed.wrapping_add(10), d);
        let std: Vec<f32> = data(seed.wrapping_add(11), d)
            .into_iter()
            .map(|v| v.abs() + 0.5)
            .collect();
        let gamma = data(seed.wrapping_add(12), d);
        let beta = data(seed.wrapping_add(13), d);
        // Scalar reference: exactly the BatchNorm1d eval arithmetic.
        let mut reference = vec![0.0f32; n * d];
        for (row, orow) in x.chunks_exact(d).zip(reference.chunks_exact_mut(d)) {
            for j in 0..d {
                orow[j] = (row[j] - mean[j]) / std[j] * gamma[j] + beta[j];
            }
        }
        for tier in [SimdTier::Off, SimdTier::Exact, SimdTier::Fast] {
            let mut out = vec![f32::NAN; n * d];
            kernels::bn_eval_into(&x, d, &mean, &std, &gamma, &beta, &mut out, tier);
            prop_assert_eq!(&out, &reference);
        }
    }

    #[test]
    fn softmax_row_kernel_is_bitwise_across_tiers(
        d in 1usize..80,
        seed in 0u64..1_000,
    ) {
        let row = data(seed, d);
        // Scalar reference: max-shift, exp, in-order sum, divide.
        let mut reference = row.clone();
        let max = reference.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for v in reference.iter_mut() {
            *v -= max;
        }
        let mut sum = 0.0f32;
        for v in reference.iter_mut() {
            *v = v.exp();
            sum += *v;
        }
        for v in reference.iter_mut() {
            *v /= sum;
        }
        for tier in [SimdTier::Off, SimdTier::Exact, SimdTier::Fast] {
            let mut out = row.clone();
            kernels::softmax_row_tier(&mut out, tier);
            prop_assert_eq!(&out, &reference);
            let total: f32 = out.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_i8_is_exact_and_thread_invariant(
        n in 1usize..24,
        k in 1usize..24,
        m in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a: Vec<i8> = (0..n * k).map(|_| rng.gen_range(-127i8..=127)).collect();
        let b: Vec<i8> = (0..k * m).map(|_| rng.gen_range(-127i8..=127)).collect();
        // i64 reference: integer accumulation has one correct answer.
        let mut reference = vec![0i64; n * m];
        for i in 0..n {
            for p in 0..k {
                for j in 0..m {
                    reference[i * m + j] += i64::from(a[i * k + p]) * i64::from(b[p * m + j]);
                }
            }
        }
        let mut out = vec![0i32; n * m];
        kernels::matmul_i8_into(&a, &b, n, k, m, &mut out);
        for i in 0..n * m {
            prop_assert_eq!(i64::from(out[i]), reference[i]);
        }
    }

    // ----------------------------------------------------------------
    // Shared log-sum-exp vs an f64 reference (PR 9 satellite 1)
    // ----------------------------------------------------------------

    #[test]
    fn log_sum_exp_tracks_f64_reference(
        d in 1usize..32,
        ti in 0usize..4,
        si in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let t = [0.5f32, 1.0, 2.0, 10.0][ti];
        let scale = [1.0f32, 50.0, 500.0, 5000.0][si];
        // Large-magnitude logits used to overflow exp() before the
        // max-shift unification; the shared helper must stay finite and
        // within f32 noise of an f64 ground truth at every scale.
        let row: Vec<f32> = data(seed, d).into_iter().map(|v| v * scale).collect();
        let got = kernels::log_sum_exp(&row, t);
        let t64 = f64::from(t);
        let max64 = row.iter().map(|&v| f64::from(v)).fold(f64::NEG_INFINITY, f64::max);
        let reference = row
            .iter()
            .map(|&v| ((f64::from(v) - max64) / t64).exp())
            .sum::<f64>()
            .ln()
            * t64
            + max64;
        prop_assert!(got.is_finite(), "LSE overflowed: {got}");
        let tol = 1e-4 * reference.abs().max(1.0);
        prop_assert!(
            (f64::from(got) - reference).abs() <= tol,
            "got {got} vs f64 reference {reference}",
        );
    }

    #[test]
    fn log_softmax_rows_matches_shared_helper(
        n in 1usize..8,
        c in 1usize..16,
        seed in 0u64..1_000,
    ) {
        // nn's log-softmax (and through it entropy_of_logits) must be the
        // shared helper at t = 1.0, bit for bit.
        let x = data(seed, n * c);
        let t = nazar_tensor::Tensor::from_vec(x.clone(), &[n, c]).unwrap();
        let lp = t.log_softmax_rows().unwrap();
        for i in 0..n {
            let row = &x[i * c..(i + 1) * c];
            let lse = kernels::log_sum_exp(row, 1.0);
            for (j, &v) in row.iter().enumerate() {
                prop_assert!(lp.data()[i * c + j] == v - lse);
            }
        }
    }
}

#[test]
fn simd_tier_reporting_is_consistent() {
    // On AVX-512 hosts the vector tiers must actually engage; elsewhere
    // they must clamp to Off (and the kernels above fall back to scalar).
    if simd::available() {
        assert_eq!(simd::effective(SimdTier::Exact), SimdTier::Exact);
    } else {
        assert_eq!(simd::effective(SimdTier::Fast), SimdTier::Off);
    }
}
