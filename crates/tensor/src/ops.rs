//! Operator overloads for [`Tensor`].
//!
//! Elementwise `+`, `-`, `*` on tensor references, unary negation, and
//! scalar scaling. These mirror the fallible methods ([`Tensor::add`],
//! [`Tensor::sub`], [`Tensor::mul`], [`Tensor::scale`]) but follow the
//! mainstream tensor-library convention of panicking on shape mismatch,
//! which keeps numeric code readable.

use crate::tensor::Tensor;
use std::ops::{Add, Mul, Neg, Sub};

impl Add for &Tensor {
    type Output = Tensor;

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs).expect("tensor + tensor requires equal shapes")
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs).expect("tensor - tensor requires equal shapes")
    }
}

impl Mul for &Tensor {
    type Output = Tensor;

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs).expect("tensor * tensor requires equal shapes")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    /// Scales every element by `rhs`.
    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;

    /// Elementwise negation.
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn elementwise_operators_match_methods() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&a - &b).data(), &[-3.0, -3.0, -3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn mismatched_shapes_panic() {
        let _ = &t(&[1.0]) + &t(&[1.0, 2.0]);
    }

    #[test]
    fn operators_compose() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[3.0, 4.0]);
        // (a + b) * a - b
        let r = &(&(&a + &b) * &a) - &b;
        assert_eq!(r.data(), &[1.0, 8.0]);
    }
}
