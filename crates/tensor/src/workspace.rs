//! A small buffer pool for intermediate `f32` scratch space.
//!
//! The kernels in [`crate::kernels`] take their scratch (packed operand
//! panels, temporary rows) from a [`Workspace`] instead of allocating,
//! so tight loops — autograd backward sweeps, TENT adaptation steps —
//! recycle the same buffers across calls. The allocating [`crate::Tensor`]
//! methods route through a thread-local workspace, which keeps the public
//! API unchanged while still amortizing allocations.

use nazar_obs::LazyCounter;
use std::cell::RefCell;

/// How many returned buffers a workspace keeps before dropping the rest.
const MAX_POOLED: usize = 16;

static POOL_HITS: LazyCounter = LazyCounter::new_volatile(
    "nazar_tensor_workspace_pool_total",
    "Workspace buffer requests by outcome",
    &[("result", "hit")],
);
static POOL_MISSES: LazyCounter = LazyCounter::new_volatile(
    "nazar_tensor_workspace_pool_total",
    "Workspace buffer requests by outcome",
    &[("result", "miss")],
);

/// A recycling pool of `Vec<f32>` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Number of buffers currently pooled (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Takes a buffer of exactly `len` elements, all zero.
    ///
    /// Reuses a pooled buffer when one has sufficient capacity; callers
    /// return buffers with [`Workspace::recycle`] when done.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_buffer(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Takes a buffer of exactly `len` elements with unspecified contents.
    ///
    /// Cheaper than [`Workspace::take_zeroed`]; use only when every element
    /// is written before being read.
    pub fn take_filled_later(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_buffer(len);
        // Contents are about to be overwritten; only the length matters.
        // (Zero-fill still happens for the freshly grown tail — safe code
        // cannot hand out uninitialized memory.)
        buf.resize(len, 0.0);
        buf.truncate(len);
        buf
    }

    fn take_buffer(&mut self, len: usize) -> Vec<f32> {
        match self
            .pool
            .iter()
            .position(|b| b.capacity() >= len)
            .map(|i| self.pool.swap_remove(i))
        {
            Some(buf) => {
                POOL_HITS.inc();
                buf
            }
            None => {
                POOL_MISSES.inc();
                Vec::with_capacity(len)
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.pool.len() >= MAX_POOLED {
            // Keep the larger buffer: evict the smallest pooled one.
            if let Some((i, _)) = self
                .pool
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
            {
                if self.pool[i].capacity() < buf.capacity() {
                    self.pool[i] = buf;
                }
            }
            return;
        }
        self.pool.push(buf);
    }

    /// Runs `f` with this thread's shared workspace.
    ///
    /// The allocating [`crate::Tensor`] wrappers use this so repeated calls
    /// on one thread recycle scratch buffers without any API change.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
        thread_local! {
            static WS: RefCell<Workspace> = RefCell::new(Workspace::new());
        }
        WS.with(|ws| f(&mut ws.borrow_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_returns_zeroes_even_after_recycle() {
        let mut ws = Workspace::new();
        let mut buf = ws.take_zeroed(8);
        buf.iter_mut().for_each(|v| *v = 9.0);
        ws.recycle(buf);
        assert_eq!(ws.pooled(), 1);
        let again = ws.take_zeroed(4);
        assert!(again.iter().all(|&v| v == 0.0));
        assert_eq!(again.len(), 4);
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn buffers_are_reused_not_reallocated() {
        let mut ws = Workspace::new();
        let buf = ws.take_zeroed(1024);
        let ptr = buf.as_ptr();
        ws.recycle(buf);
        let buf2 = ws.take_zeroed(512);
        assert_eq!(buf2.as_ptr(), ptr, "pooled buffer should be reused");
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for i in 0..(MAX_POOLED + 8) {
            ws.recycle(vec![0.0; i + 1]);
        }
        assert!(ws.pooled() <= MAX_POOLED);
    }

    #[test]
    fn thread_local_workspace_is_shared_within_a_thread() {
        let ptr = Workspace::with_thread_local(|ws| {
            let buf = ws.take_zeroed(256);
            let p = buf.as_ptr();
            ws.recycle(buf);
            p
        });
        let ptr2 = Workspace::with_thread_local(|ws| {
            let buf = ws.take_zeroed(128);
            let p = buf.as_ptr();
            ws.recycle(buf);
            p
        });
        assert_eq!(ptr, ptr2);
    }
}
