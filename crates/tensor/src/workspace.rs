//! A small buffer pool for intermediate `f32` scratch space.
//!
//! The kernels in [`crate::kernels`] take their scratch (packed operand
//! panels, temporary rows) from a [`Workspace`] instead of allocating,
//! so tight loops — autograd backward sweeps, TENT adaptation steps —
//! recycle the same buffers across calls. The allocating [`crate::Tensor`]
//! methods route through a thread-local workspace, which keeps the public
//! API unchanged while still amortizing allocations.

use nazar_obs::{LazyCounter, LazyGauge};
use std::cell::RefCell;
use std::sync::atomic::{AtomicIsize, Ordering};

/// How many returned buffers a workspace keeps before dropping the rest.
const MAX_POOLED: usize = 16;

/// Shrink trigger: a buffer returned with more than `HIGH_WATER_RATIO`
/// times the recent peak request size is considered a burst leftover and
/// is shrunk before pooling, so one huge adaptation job cannot pin
/// peak-sized scratch for the rest of the run.
const HIGH_WATER_RATIO: usize = 4;

/// Per-recycle decay divisor of the recent-peak request tracker. Each
/// recycle leaks `1/16` of the remembered peak, so the watermark follows
/// demand down within a few dozen recycles of a burst ending.
const PEAK_DECAY_DIVISOR: usize = 16;

/// Buffers at or below this capacity (in elements) are never shrunk —
/// small scratch is cheap to keep and reallocation-churn-prone.
const SHRINK_FLOOR: usize = 1024;

static POOL_HITS: LazyCounter = LazyCounter::new_volatile(
    "nazar_tensor_workspace_pool_total",
    "Workspace buffer requests by outcome",
    &[("result", "hit")],
);
static POOL_MISSES: LazyCounter = LazyCounter::new_volatile(
    "nazar_tensor_workspace_pool_total",
    "Workspace buffer requests by outcome",
    &[("result", "miss")],
);
static POOL_BYTES: LazyGauge = LazyGauge::new_volatile(
    "nazar_tensor_workspace_pool_bytes",
    "Bytes currently held by workspace buffer pools (all threads)",
    &[],
);

/// Process-wide pooled-bytes total backing the gauge (workspaces are
/// per-thread, the gauge is global, so each pool publishes deltas).
static POOL_BYTES_TOTAL: AtomicIsize = AtomicIsize::new(0);

fn note_pool_bytes(delta: isize) {
    if delta == 0 {
        return;
    }
    let now = POOL_BYTES_TOTAL.fetch_add(delta, Ordering::Relaxed) + delta;
    POOL_BYTES.set(now.max(0) as f64);
}

/// Bytes currently pooled across every live [`Workspace`] (diagnostics
/// and the shrink-policy regression tests; also exported as the
/// `nazar_tensor_workspace_pool_bytes` gauge).
pub fn pooled_bytes_total() -> usize {
    POOL_BYTES_TOTAL.load(Ordering::Relaxed).max(0) as usize
}

/// A recycling pool of `Vec<f32>` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    /// Decayed high-water mark of recent request sizes (elements).
    recent_peak: usize,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Number of buffers currently pooled (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Bytes currently held by this pool's buffers.
    pub fn pooled_bytes(&self) -> usize {
        self.pool
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Takes a buffer of exactly `len` elements, all zero.
    ///
    /// Reuses a pooled buffer when one has sufficient capacity; callers
    /// return buffers with [`Workspace::recycle`] when done.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_buffer(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Takes a buffer of exactly `len` elements with unspecified contents.
    ///
    /// Cheaper than [`Workspace::take_zeroed`]; use only when every element
    /// is written before being read.
    pub fn take_filled_later(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_buffer(len);
        // Contents are about to be overwritten; only the length matters.
        // (Zero-fill still happens for the freshly grown tail — safe code
        // cannot hand out uninitialized memory.)
        buf.resize(len, 0.0);
        buf.truncate(len);
        buf
    }

    fn take_buffer(&mut self, len: usize) -> Vec<f32> {
        self.recent_peak = self.recent_peak.max(len);
        match self
            .pool
            .iter()
            .position(|b| b.capacity() >= len)
            .map(|i| self.pool.swap_remove(i))
        {
            Some(buf) => {
                POOL_HITS.inc();
                note_pool_bytes(-((buf.capacity() * std::mem::size_of::<f32>()) as isize));
                buf
            }
            None => {
                POOL_MISSES.inc();
                Vec::with_capacity(len)
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    ///
    /// Shrink/cap policy: the pool remembers a decayed high-water mark of
    /// recent request sizes; a returned buffer whose capacity exceeds
    /// `HIGH_WATER_RATIO` (4) times that mark is shrunk to the mark before
    /// pooling. A one-off burst (a single large adaptation job) therefore
    /// stops pinning peak-sized scratch once steady-state requests drop
    /// back down — the regression test below drives exactly that shape.
    pub fn recycle(&mut self, mut buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        // Decay the watermark toward current demand before judging `buf`.
        self.recent_peak -= self.recent_peak / PEAK_DECAY_DIVISOR;
        let cap_target = self.recent_peak.max(SHRINK_FLOOR);
        if buf.capacity() > cap_target.saturating_mul(HIGH_WATER_RATIO) {
            buf.truncate(cap_target);
            buf.shrink_to(cap_target);
        }
        if self.pool.len() >= MAX_POOLED {
            // Keep the larger buffer: evict the smallest pooled one.
            if let Some((i, _)) = self
                .pool
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
            {
                if self.pool[i].capacity() < buf.capacity() {
                    let evicted = std::mem::replace(&mut self.pool[i], buf);
                    let delta = self.pool[i].capacity() as isize - evicted.capacity() as isize;
                    note_pool_bytes(delta * std::mem::size_of::<f32>() as isize);
                }
            }
            return;
        }
        note_pool_bytes((buf.capacity() * std::mem::size_of::<f32>()) as isize);
        self.pool.push(buf);
    }

    /// Runs `f` with this thread's shared workspace.
    ///
    /// The allocating [`crate::Tensor`] wrappers use this so repeated calls
    /// on one thread recycle scratch buffers without any API change.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
        thread_local! {
            static WS: RefCell<Workspace> = RefCell::new(Workspace::new());
        }
        WS.with(|ws| f(&mut ws.borrow_mut()))
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        // Keep the process-wide pooled-bytes gauge honest when short-lived
        // workspaces (tests, one-shot jobs) die with buffers still pooled.
        note_pool_bytes(-(self.pooled_bytes() as isize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_returns_zeroes_even_after_recycle() {
        let mut ws = Workspace::new();
        let mut buf = ws.take_zeroed(8);
        buf.iter_mut().for_each(|v| *v = 9.0);
        ws.recycle(buf);
        assert_eq!(ws.pooled(), 1);
        let again = ws.take_zeroed(4);
        assert!(again.iter().all(|&v| v == 0.0));
        assert_eq!(again.len(), 4);
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn buffers_are_reused_not_reallocated() {
        let mut ws = Workspace::new();
        let buf = ws.take_zeroed(1024);
        let ptr = buf.as_ptr();
        ws.recycle(buf);
        let buf2 = ws.take_zeroed(512);
        assert_eq!(buf2.as_ptr(), ptr, "pooled buffer should be reused");
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for i in 0..(MAX_POOLED + 8) {
            ws.recycle(vec![0.0; i + 1]);
        }
        assert!(ws.pooled() <= MAX_POOLED);
    }

    #[test]
    fn burst_footprint_decays_back_to_steady_state() {
        // Regression (PR 9 satellite 2): a single peak-sized matmul used to
        // pin its scratch capacity in the pool forever. Drive one large
        // burst, then a steady small workload, and require the pool's
        // footprint to decay to within the shrink policy's envelope.
        let mut ws = Workspace::new();
        const BURST: usize = 1 << 20; // 1M elements = 4 MiB
        const STEADY: usize = 2048;

        let big = ws.take_filled_later(BURST);
        ws.recycle(big);
        let burst_bytes = ws.pooled_bytes();
        assert!(burst_bytes >= BURST * 4, "burst retained: {burst_bytes}");

        // Steady-state small requests; the decayed watermark must fall and
        // the oversized buffer must be shrunk on some return.
        for _ in 0..200 {
            let buf = ws.take_filled_later(STEADY);
            ws.recycle(buf);
        }
        let settled = ws.pooled_bytes();
        let envelope = STEADY * 4 * HIGH_WATER_RATIO * 4 + SHRINK_FLOOR * 4 * MAX_POOLED;
        assert!(
            settled <= envelope,
            "pool footprint failed to decay: {settled} bytes (envelope {envelope})"
        );
        assert!(settled < burst_bytes / 8, "no meaningful decay: {settled}");
    }

    #[test]
    fn pooled_bytes_tracks_pool_contents() {
        let mut ws = Workspace::new();
        assert_eq!(ws.pooled_bytes(), 0);
        let buf = ws.take_filled_later(100);
        let cap = buf.capacity();
        ws.recycle(buf);
        assert_eq!(ws.pooled_bytes(), cap * 4);
        let _ = ws.take_filled_later(10);
        assert_eq!(ws.pooled_bytes(), 0);
    }

    #[test]
    fn thread_local_workspace_is_shared_within_a_thread() {
        let ptr = Workspace::with_thread_local(|ws| {
            let buf = ws.take_zeroed(256);
            let p = buf.as_ptr();
            ws.recycle(buf);
            p
        });
        let ptr2 = Workspace::with_thread_local(|ws| {
            let buf = ws.take_zeroed(128);
            let p = buf.as_ptr();
            ws.recycle(buf);
            p
        });
        assert_eq!(ptr, ptr2);
    }
}
