//! Reverse-mode automatic differentiation on a tape.
//!
//! The tape owns every intermediate [`Tensor`] produced during a forward
//! pass. Each [`Var`] is a lightweight handle (tape pointer + node id).
//! Because parents always have lower node ids than their children, the
//! backward pass is a single reverse sweep over the node vector.
//!
//! Leaves also receive gradients, which is what makes input-gradient
//! detectors (ODIN, Generalized-ODIN) implementable downstream.

use crate::kernels;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The recorded operation that produced a node.
///
/// Constant payloads (e.g. the scalar in `AddScalar`) are kept for `Debug`
/// output even when the backward rule does not need them.
#[derive(Debug, Clone)]
#[allow(dead_code)]
enum Op {
    Leaf,
    Add(usize, usize),
    AddRow(usize, usize),
    SubRow(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MulRow(usize, usize),
    DivRow(usize, usize),
    Neg(usize),
    Scale(usize, f32),
    AddScalar(usize, f32),
    Matmul(usize, usize),
    Relu(usize),
    Exp(usize),
    Ln(usize),
    Sqrt(usize),
    LogSoftmax(usize),
    MeanAxis0(usize),
    SumAll(usize),
    MeanAll(usize),
    NllLoss(usize, Vec<usize>),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

#[derive(Debug, Default)]
struct TapeInner {
    nodes: Vec<Node>,
}

/// A gradient tape for reverse-mode automatic differentiation.
///
/// Create leaves with [`Tape::leaf`], compose [`Var`] operations, then call
/// [`Var::backward`] on a scalar result to obtain [`Gradients`].
///
/// # Example
///
/// ```
/// use nazar_tensor::{Tape, Tensor};
///
/// let tape = Tape::new();
/// let w = tape.leaf(Tensor::from_vec(vec![2.0], &[1, 1]).unwrap());
/// let x = tape.leaf(Tensor::from_vec(vec![3.0], &[1, 1]).unwrap());
/// let y = w.matmul(&x).sum_all();
/// let grads = y.backward();
/// assert_eq!(grads.get(&w).unwrap().data(), &[3.0]);
/// assert_eq!(grads.get(&x).unwrap().data(), &[2.0]);
/// ```
#[derive(Clone, Default)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tape({} nodes)", self.inner.borrow().nodes.len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Whether the tape has recorded any node.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers `value` as a differentiable leaf and returns its handle.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node { value, op });
        Var {
            tape: self.clone(),
            id,
        }
    }

    fn value(&self, id: usize) -> Tensor {
        self.inner.borrow().nodes[id].value.clone()
    }
}

/// Accumulated gradients, indexed by the [`Var`] they belong to.
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the backward root with respect to `var`, if `var`
    /// participated in the computation.
    pub fn get(&self, var: &Var) -> Option<&Tensor> {
        self.by_id(var.id)
    }

    /// The gradient for the node with the given tape id.
    ///
    /// Parameters that must remain `Send` (e.g. model weights shared across
    /// scoped threads) record the plain [`Var::id`] instead of holding a
    /// `Var` (whose tape pointer is an `Rc`), and look their gradient up
    /// here after the backward pass.
    pub fn by_id(&self, id: usize) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }
}

/// A handle to a node on a [`Tape`].
///
/// `Var` is cheap to clone (a reference-counted tape pointer and an index).
/// All arithmetic records a new node; nothing mutates in place.
///
/// # Panics
///
/// Operations panic when operand shapes are incompatible or when combining
/// variables from different tapes — both are programmer errors in model code,
/// mirroring the panic-on-shape-mismatch convention of mainstream tensor
/// libraries.
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    id: usize,
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var(id={}, shape={})", self.id, self.value().shape())
    }
}

impl Var {
    /// A snapshot of this node's value.
    pub fn value(&self) -> Tensor {
        self.tape.value(self.id)
    }

    /// The node id on its tape (stable for the tape's lifetime).
    pub fn id(&self) -> usize {
        self.id
    }

    fn same_tape(&self, other: &Var) {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "cannot combine vars from different tapes"
        );
    }

    fn binary(&self, other: &Var, op: fn(usize, usize) -> Op, name: &str) -> Var {
        self.same_tape(other);
        let (a, b) = (self.value(), other.value());
        let value = match op(0, 0) {
            Op::Add(..) => a.add(&b),
            Op::AddRow(..) => a.add_row(&b),
            Op::SubRow(..) => a.sub_row(&b),
            Op::Sub(..) => a.sub(&b),
            Op::Mul(..) => a.mul(&b),
            Op::MulRow(..) => a.mul_row(&b),
            Op::DivRow(..) => a.div_row(&b),
            Op::Matmul(..) => a.matmul(&b),
            _ => unreachable!(),
        }
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        self.tape.push(value, op(self.id, other.id))
    }

    /// Elementwise sum. See [`Tensor::add`].
    pub fn add(&self, other: &Var) -> Var {
        self.binary(other, Op::Add, "add")
    }

    /// Adds a `[d]` vector variable to every row of this `[n, d]` variable.
    pub fn add_row(&self, other: &Var) -> Var {
        self.binary(other, Op::AddRow, "add_row")
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Var) -> Var {
        self.binary(other, Op::Sub, "sub")
    }

    /// Subtracts a `[d]` vector variable from every row of this `[n, d]` variable.
    pub fn sub_row(&self, other: &Var) -> Var {
        self.binary(other, Op::SubRow, "sub_row")
    }

    /// Elementwise product.
    pub fn mul(&self, other: &Var) -> Var {
        self.binary(other, Op::Mul, "mul")
    }

    /// Multiplies every row of this `[n, d]` variable by a `[d]` variable.
    pub fn mul_row(&self, other: &Var) -> Var {
        self.binary(other, Op::MulRow, "mul_row")
    }

    /// Divides every row of this `[n, d]` variable by a `[d]` variable.
    pub fn div_row(&self, other: &Var) -> Var {
        self.binary(other, Op::DivRow, "div_row")
    }

    /// Matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        self.binary(other, Op::Matmul, "matmul")
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        let v = self.value().scale(-1.0);
        self.tape.push(v, Op::Neg(self.id))
    }

    /// Multiplies every element by the constant `c`.
    pub fn scale(&self, c: f32) -> Var {
        let v = self.value().scale(c);
        self.tape.push(v, Op::Scale(self.id, c))
    }

    /// Adds the constant `c` to every element.
    pub fn add_scalar(&self, c: f32) -> Var {
        let v = self.value().add_scalar(c);
        self.tape.push(v, Op::AddScalar(self.id, c))
    }

    /// Rectified linear unit, elementwise.
    pub fn relu(&self) -> Var {
        let v = self.value().map(|x| x.max(0.0));
        self.tape.push(v, Op::Relu(self.id))
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let v = self.value().map(f32::exp);
        self.tape.push(v, Op::Exp(self.id))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        let v = self.value().map(f32::ln);
        self.tape.push(v, Op::Ln(self.id))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let v = self.value().map(f32::sqrt);
        self.tape.push(v, Op::Sqrt(self.id))
    }

    /// Row-wise log-softmax of an `[n, c]` logit matrix.
    pub fn log_softmax(&self) -> Var {
        let v = self
            .value()
            .log_softmax_rows()
            .unwrap_or_else(|e| panic!("log_softmax: {e}"));
        self.tape.push(v, Op::LogSoftmax(self.id))
    }

    /// Column means of an `[n, d]` matrix, as a `[d]` vector.
    pub fn mean_axis0(&self) -> Var {
        let v = self
            .value()
            .mean_axis0()
            .unwrap_or_else(|e| panic!("mean_axis0: {e}"));
        self.tape.push(v, Op::MeanAxis0(self.id))
    }

    /// Sum of all elements, as a scalar variable.
    pub fn sum_all(&self) -> Var {
        let v = Tensor::scalar(self.value().sum_all());
        self.tape.push(v, Op::SumAll(self.id))
    }

    /// Mean of all elements, as a scalar variable.
    pub fn mean_all(&self) -> Var {
        let v = Tensor::scalar(
            self.value()
                .mean_all()
                .unwrap_or_else(|e| panic!("mean_all: {e}")),
        );
        self.tape.push(v, Op::MeanAll(self.id))
    }

    /// Negative log-likelihood loss over row-wise log-probabilities.
    ///
    /// `self` must be an `[n, c]` log-probability matrix (e.g. produced by
    /// [`Var::log_softmax`]); `targets` gives the true class per row. The
    /// result is the scalar `-(1/n) Σᵢ logp[i, targetᵢ]`.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the row count or a target is
    /// out of class range.
    pub fn nll_loss(&self, targets: &[usize]) -> Var {
        let lp = self.value();
        let (n, c) = (
            lp.nrows().expect("nll_loss: rank-2 input"),
            lp.ncols().unwrap(),
        );
        assert_eq!(targets.len(), n, "nll_loss: one target per row required");
        let mut acc = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < c, "nll_loss: target {t} out of range for {c} classes");
            acc -= lp.data()[i * c + t];
        }
        let v = Tensor::scalar(acc / n as f32);
        self.tape.push(v, Op::NllLoss(self.id, targets.to_vec()))
    }

    /// Runs the backward pass from this (scalar) variable.
    ///
    /// Returns the gradients of `self` with respect to every node that
    /// contributed to it, including leaves.
    ///
    /// The sweep is written over the in-place [`kernels`]: each node's
    /// contribution is accumulated directly into its parents' gradient
    /// buffers (allocated once per participating node), and the matmul
    /// backward uses the fused `A·gᵀ`-style kernels instead of
    /// materializing transposed operands.
    ///
    /// # Panics
    ///
    /// Panics if `self` does not hold exactly one element.
    pub fn backward(&self) -> Gradients {
        let root = self.value();
        assert_eq!(root.len(), 1, "backward requires a scalar root");
        let inner = self.tape.inner.borrow();
        let mut grads: Vec<Option<Tensor>> = vec![None; inner.nodes.len()];
        grads[self.id] = Some(Tensor::full(root.dims(), 1.0));

        for id in (0..=self.id).rev() {
            // Parents always have lower ids, so the split borrows this
            // node's gradient immutably while parents stay writable.
            let (parents, rest) = grads.split_at_mut(id);
            let Some(g) = rest[0].as_ref() else { continue };
            let node = &inner.nodes[id];
            match &node.op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    acc_copy(parents, *a, g);
                    acc_copy(parents, *b, g);
                }
                Op::AddRow(a, b) => {
                    let (n, d) = row_dims(g);
                    let gb = slot(parents, *b, &inner.nodes[*b].value);
                    kernels::sum_axis0_assign(g.data(), n, d, gb.data_mut());
                    acc_copy(parents, *a, g);
                }
                Op::SubRow(a, b) => {
                    let (_, d) = row_dims(g);
                    let gb = slot(parents, *b, &inner.nodes[*b].value);
                    for row in g.data().chunks_exact(d) {
                        for (o, &x) in gb.data_mut().iter_mut().zip(row) {
                            *o -= x;
                        }
                    }
                    acc_copy(parents, *a, g);
                }
                Op::Sub(a, b) => {
                    acc_copy(parents, *a, g);
                    acc_axpy(parents, *b, &inner.nodes[*b].value, -1.0, g);
                }
                Op::Mul(a, b) => {
                    let (av, bv) = (&inner.nodes[*a].value, &inner.nodes[*b].value);
                    let ga = slot(parents, *a, av);
                    kernels::fma_assign(ga.data_mut(), g.data(), bv.data());
                    let gb = slot(parents, *b, bv);
                    kernels::fma_assign(gb.data_mut(), g.data(), av.data());
                }
                Op::MulRow(a, b) => {
                    let (av, bv) = (&inner.nodes[*a].value, &inner.nodes[*b].value);
                    let (_, d) = row_dims(g);
                    let ga = slot(parents, *a, av);
                    for (orow, grow) in ga
                        .data_mut()
                        .chunks_exact_mut(d)
                        .zip(g.data().chunks_exact(d))
                    {
                        kernels::fma_assign(orow, grow, bv.data());
                    }
                    let gb = slot(parents, *b, bv);
                    for (grow, arow) in g.data().chunks_exact(d).zip(av.data().chunks_exact(d)) {
                        kernels::fma_assign(gb.data_mut(), grow, arow);
                    }
                }
                Op::DivRow(a, b) => {
                    let (av, bv) = (&inner.nodes[*a].value, &inner.nodes[*b].value);
                    let (_, d) = row_dims(g);
                    let ga = slot(parents, *a, av);
                    for (orow, grow) in ga
                        .data_mut()
                        .chunks_exact_mut(d)
                        .zip(g.data().chunks_exact(d))
                    {
                        for ((o, &gv), &b) in orow.iter_mut().zip(grow).zip(bv.data()) {
                            *o += gv / b;
                        }
                    }
                    // d/db (a/b) = -a / b^2, summed over the broadcast rows.
                    let gb = slot(parents, *b, bv);
                    for (grow, arow) in g.data().chunks_exact(d).zip(av.data().chunks_exact(d)) {
                        for (((o, &gv), &a), &b) in
                            gb.data_mut().iter_mut().zip(grow).zip(arow).zip(bv.data())
                        {
                            *o -= gv * a / (b * b);
                        }
                    }
                }
                Op::Neg(a) => acc_axpy(parents, *a, &inner.nodes[*a].value, -1.0, g),
                Op::Scale(a, c) => acc_axpy(parents, *a, &inner.nodes[*a].value, *c, g),
                Op::AddScalar(a, _) => acc_copy(parents, *a, g),
                Op::Matmul(a, b) => {
                    let (av, bv) = (&inner.nodes[*a].value, &inner.nodes[*b].value);
                    let (n, k) = row_dims(av);
                    let (_, m) = row_dims(bv);
                    // ga += g · bᵀ and gb += aᵀ · g, fused into the
                    // accumulators without materializing a transpose.
                    let ga = slot(parents, *a, av);
                    kernels::matmul_a_bt_into(g.data(), bv.data(), n, m, k, ga.data_mut());
                    let gb = slot(parents, *b, bv);
                    kernels::matmul_at_b_into(av.data(), g.data(), n, k, m, gb.data_mut());
                }
                Op::Relu(a) => {
                    let av = &inner.nodes[*a].value;
                    let ga = slot(parents, *a, av);
                    for ((o, &gv), &x) in ga.data_mut().iter_mut().zip(g.data()).zip(av.data()) {
                        if x > 0.0 {
                            *o += gv;
                        }
                    }
                }
                Op::Exp(a) => {
                    let ga = slot(parents, *a, &inner.nodes[*a].value);
                    kernels::fma_assign(ga.data_mut(), g.data(), node.value.data());
                }
                Op::Ln(a) => {
                    let av = &inner.nodes[*a].value;
                    let ga = slot(parents, *a, av);
                    for ((o, &gv), &x) in ga.data_mut().iter_mut().zip(g.data()).zip(av.data()) {
                        *o += gv / x;
                    }
                }
                Op::Sqrt(a) => {
                    let ga = slot(parents, *a, &inner.nodes[*a].value);
                    for ((o, &gv), &y) in ga
                        .data_mut()
                        .iter_mut()
                        .zip(g.data())
                        .zip(node.value.data())
                    {
                        *o += gv * (0.5 / y);
                    }
                }
                Op::LogSoftmax(a) => {
                    // d logsoftmax: g - softmax(a) * rowsum(g)
                    let (_, c) = row_dims(&node.value);
                    let ga = slot(parents, *a, &inner.nodes[*a].value);
                    for ((orow, grow), lprow) in ga
                        .data_mut()
                        .chunks_exact_mut(c)
                        .zip(g.data().chunks_exact(c))
                        .zip(node.value.data().chunks_exact(c))
                    {
                        let s: f32 = grow.iter().sum();
                        for ((o, &gv), &lp) in orow.iter_mut().zip(grow).zip(lprow) {
                            *o += gv - lp.exp() * s;
                        }
                    }
                }
                Op::MeanAxis0(a) => {
                    let av = &inner.nodes[*a].value;
                    let (n, d) = row_dims(av);
                    let inv_n = 1.0 / n as f32;
                    let ga = slot(parents, *a, av);
                    for orow in ga.data_mut().chunks_exact_mut(d) {
                        kernels::axpy_into(inv_n, g.data(), orow);
                    }
                }
                Op::SumAll(a) => {
                    let c = g.data()[0];
                    let ga = slot(parents, *a, &inner.nodes[*a].value);
                    ga.map_inplace(|x| x + c);
                }
                Op::MeanAll(a) => {
                    let av = &inner.nodes[*a].value;
                    let c = g.data()[0] / av.len() as f32;
                    let ga = slot(parents, *a, av);
                    ga.map_inplace(|x| x + c);
                }
                Op::NllLoss(a, targets) => {
                    let av = &inner.nodes[*a].value;
                    let (n, c) = row_dims(av);
                    let coef = -g.data()[0] / n as f32;
                    let ga = slot(parents, *a, av);
                    for (i, &t) in targets.iter().enumerate() {
                        ga.data_mut()[i * c + t] += coef;
                    }
                }
            }
        }
        Gradients { grads }
    }
}

/// Rows and columns of a rank-2 node value (backward-pass internal).
fn row_dims(t: &Tensor) -> (usize, usize) {
    (
        t.nrows().expect("backward: rank-2 value"),
        t.ncols().expect("backward: rank-2 value"),
    )
}

/// The gradient accumulator for node `id`, created zeroed on first use.
fn slot<'g>(grads: &'g mut [Option<Tensor>], id: usize, value: &Tensor) -> &'g mut Tensor {
    grads[id].get_or_insert_with(|| Tensor::zeros(value.dims()))
}

/// `grads[id] += g`.
fn acc_copy(grads: &mut [Option<Tensor>], id: usize, g: &Tensor) {
    match &mut grads[id] {
        Some(acc) => acc
            .add_assign(g)
            .expect("gradient accumulation shape mismatch"),
        empty => *empty = Some(g.clone()),
    }
}

/// `grads[id] += alpha * g`.
fn acc_axpy(grads: &mut [Option<Tensor>], id: usize, value: &Tensor, alpha: f32, g: &Tensor) {
    slot(grads, id, value)
        .axpy_assign(alpha, g)
        .expect("gradient accumulation shape mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Central finite-difference gradient of a scalar function of a tensor.
    fn fd<F: Fn(&Tensor) -> f32>(f: F, x0: &Tensor, eps: f32) -> Tensor {
        let mut out = Tensor::zeros(x0.dims());
        for i in 0..x0.len() {
            let mut p = x0.clone();
            p.data_mut()[i] += eps;
            let mut m = x0.clone();
            m.data_mut()[i] -= eps;
            out.data_mut()[i] = (f(&p) - f(&m)) / (2.0 * eps);
        }
        out
    }

    #[test]
    fn grad_matmul_chain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let x0 = Tensor::randn(&mut rng, &[3, 4], 0.0, 1.0);
        let w0 = Tensor::randn(&mut rng, &[4, 2], 0.0, 1.0);

        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let w = tape.leaf(w0.clone());
        let y = x.matmul(&w).relu().sum_all();
        let grads = y.backward();

        let w0c = w0.clone();
        let nx = fd(
            |x| x.matmul(&w0c).unwrap().map(|v| v.max(0.0)).sum_all(),
            &x0,
            1e-2,
        );
        assert!(grads.get(&x).unwrap().approx_eq(&nx, 1e-2));

        let x0c = x0.clone();
        let nw = fd(
            |w| x0c.matmul(w).unwrap().map(|v| v.max(0.0)).sum_all(),
            &w0,
            1e-2,
        );
        assert!(grads.get(&w).unwrap().approx_eq(&nw, 1e-2));
    }

    #[test]
    fn grad_log_softmax_nll() {
        let mut rng = SmallRng::seed_from_u64(2);
        let x0 = Tensor::randn(&mut rng, &[4, 3], 0.0, 1.0);
        let targets = vec![0usize, 2, 1, 1];

        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = x.log_softmax().nll_loss(&targets);
        let grads = loss.backward();

        let t = targets.clone();
        let n = fd(
            |x| {
                let lp = x.log_softmax_rows().unwrap();
                let c = lp.ncols().unwrap();
                -t.iter()
                    .enumerate()
                    .map(|(i, &ti)| lp.data()[i * c + ti])
                    .sum::<f32>()
                    / t.len() as f32
            },
            &x0,
            1e-2,
        );
        assert!(grads.get(&x).unwrap().approx_eq(&n, 1e-2));
    }

    #[test]
    fn grad_entropy_objective() {
        // The TENT objective: H = -(1/n) Σ_i Σ_c p log p with p = softmax(x).
        let mut rng = SmallRng::seed_from_u64(3);
        let x0 = Tensor::randn(&mut rng, &[3, 4], 0.0, 1.5);

        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let lp = x.log_softmax();
        let p = lp.exp();
        let h = p.mul(&lp).sum_all().scale(-1.0 / 3.0);
        let grads = h.backward();

        let n = fd(
            |x| {
                let lp = x.log_softmax_rows().unwrap();
                let p = lp.map(f32::exp);
                -p.mul(&lp).unwrap().sum_all() / 3.0
            },
            &x0,
            1e-2,
        );
        assert!(grads.get(&x).unwrap().approx_eq(&n, 5e-2));
    }

    #[test]
    fn grad_batchnorm_composite() {
        // x_hat = (x - mean0(x)) / sqrt(var0(x) + eps), gamma/beta affine.
        let mut rng = SmallRng::seed_from_u64(4);
        let x0 = Tensor::randn(&mut rng, &[5, 3], 1.0, 2.0);
        let gamma0 = Tensor::randn(&mut rng, &[3], 1.0, 0.1);
        let beta0 = Tensor::randn(&mut rng, &[3], 0.0, 0.1);
        let eps = 1e-5;

        let bn = |x: &Tensor, gamma: &Tensor, beta: &Tensor| -> f32 {
            let mean = x.mean_axis0().unwrap();
            let var = x.var_axis0().unwrap();
            let std = var.add_scalar(eps).map(f32::sqrt);
            let xh = x.sub_row(&mean).unwrap().div_row(&std).unwrap();
            let y = xh.mul_row(gamma).unwrap().add_row(beta).unwrap();
            y.map(|v| v * v).sum_all()
        };

        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let gamma = tape.leaf(gamma0.clone());
        let beta = tape.leaf(beta0.clone());
        let mean = x.mean_axis0();
        let centered = x.sub_row(&mean);
        let var = centered.mul(&centered).mean_axis0();
        let std = var.add_scalar(eps).sqrt();
        let xh = centered.div_row(&std);
        let y = xh.mul_row(&gamma).add_row(&beta);
        let out = y.mul(&y).sum_all();
        let grads = out.backward();

        let (g0, b0) = (gamma0.clone(), beta0.clone());
        let nx = fd(|x| bn(x, &g0, &b0), &x0, 1e-2);
        assert!(
            grads.get(&x).unwrap().approx_eq(&nx, 6e-2),
            "x grad mismatch: {:?} vs {:?}",
            grads.get(&x).unwrap(),
            nx
        );

        let (x0c, b0) = (x0.clone(), beta0.clone());
        let ng = fd(|g| bn(&x0c, g, &b0), &gamma0, 1e-3);
        assert!(grads.get(&gamma).unwrap().approx_eq(&ng, 5e-2));

        let (x0c, g0) = (x0, gamma0);
        let nb = fd(|b| bn(&x0c, &g0, b), &beta0, 1e-3);
        assert!(grads.get(&beta).unwrap().approx_eq(&nb, 5e-2));
    }

    #[test]
    fn grad_accumulates_over_reused_vars() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3.0], &[1, 1]).unwrap());
        let y = x.add(&x).sum_all(); // y = 2x
        let grads = y.backward();
        assert_eq!(grads.get(&x).unwrap().data(), &[2.0]);
    }

    #[test]
    fn grad_exp_ln_sqrt() {
        let x0 = Tensor::from_vec(vec![0.5, 1.5, 2.5, 4.0], &[2, 2]).unwrap();
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = x.exp().ln().sqrt().sum_all(); // sqrt(x) summed
        let grads = y.backward();
        let n = fd(|x| x.map(f32::sqrt).sum_all(), &x0, 1e-3);
        assert!(grads.get(&x).unwrap().approx_eq(&n, 1e-2));
    }

    #[test]
    fn grad_mean_axis0_broadcasts_evenly() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4, 2]));
        let y = x.mean_axis0().sum_all();
        let grads = y.backward();
        assert!(grads
            .get(&x)
            .unwrap()
            .approx_eq(&Tensor::full(&[4, 2], 0.25), 1e-6));
    }

    #[test]
    #[should_panic(expected = "different tapes")]
    fn mixing_tapes_panics() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.leaf(Tensor::ones(&[1]));
        let b = t2.leaf(Tensor::ones(&[1]));
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "scalar root")]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[2, 2]));
        let _ = x.backward();
    }

    #[test]
    fn leaf_gradients_available_for_inputs() {
        // ODIN needs ∂loss/∂input — verify leaves receive gradients.
        let tape = Tape::new();
        let input = tape.leaf(Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap());
        let loss = input.log_softmax().nll_loss(&[0]);
        let grads = loss.backward();
        assert!(grads.get(&input).is_some());
    }
}
