//! Reverse-mode automatic differentiation on a tape.
//!
//! The tape owns every intermediate [`Tensor`] produced during a forward
//! pass. Each [`Var`] is a lightweight handle (tape pointer + node id).
//! Because parents always have lower node ids than their children, the
//! backward pass is a single reverse sweep over the node vector.
//!
//! Leaves also receive gradients, which is what makes input-gradient
//! detectors (ODIN, Generalized-ODIN) implementable downstream.

use crate::tensor::Tensor;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The recorded operation that produced a node.
///
/// Constant payloads (e.g. the scalar in `AddScalar`) are kept for `Debug`
/// output even when the backward rule does not need them.
#[derive(Debug, Clone)]
#[allow(dead_code)]
enum Op {
    Leaf,
    Add(usize, usize),
    AddRow(usize, usize),
    SubRow(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MulRow(usize, usize),
    DivRow(usize, usize),
    Neg(usize),
    Scale(usize, f32),
    AddScalar(usize, f32),
    Matmul(usize, usize),
    Relu(usize),
    Exp(usize),
    Ln(usize),
    Sqrt(usize),
    LogSoftmax(usize),
    MeanAxis0(usize),
    SumAll(usize),
    MeanAll(usize),
    NllLoss(usize, Vec<usize>),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

#[derive(Debug, Default)]
struct TapeInner {
    nodes: Vec<Node>,
}

/// A gradient tape for reverse-mode automatic differentiation.
///
/// Create leaves with [`Tape::leaf`], compose [`Var`] operations, then call
/// [`Var::backward`] on a scalar result to obtain [`Gradients`].
///
/// # Example
///
/// ```
/// use nazar_tensor::{Tape, Tensor};
///
/// let tape = Tape::new();
/// let w = tape.leaf(Tensor::from_vec(vec![2.0], &[1, 1]).unwrap());
/// let x = tape.leaf(Tensor::from_vec(vec![3.0], &[1, 1]).unwrap());
/// let y = w.matmul(&x).sum_all();
/// let grads = y.backward();
/// assert_eq!(grads.get(&w).unwrap().data(), &[3.0]);
/// assert_eq!(grads.get(&x).unwrap().data(), &[2.0]);
/// ```
#[derive(Clone, Default)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tape({} nodes)", self.inner.borrow().nodes.len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Whether the tape has recorded any node.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers `value` as a differentiable leaf and returns its handle.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node { value, op });
        Var {
            tape: self.clone(),
            id,
        }
    }

    fn value(&self, id: usize) -> Tensor {
        self.inner.borrow().nodes[id].value.clone()
    }
}

/// Accumulated gradients, indexed by the [`Var`] they belong to.
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the backward root with respect to `var`, if `var`
    /// participated in the computation.
    pub fn get(&self, var: &Var) -> Option<&Tensor> {
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }
}

/// A handle to a node on a [`Tape`].
///
/// `Var` is cheap to clone (a reference-counted tape pointer and an index).
/// All arithmetic records a new node; nothing mutates in place.
///
/// # Panics
///
/// Operations panic when operand shapes are incompatible or when combining
/// variables from different tapes — both are programmer errors in model code,
/// mirroring the panic-on-shape-mismatch convention of mainstream tensor
/// libraries.
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    id: usize,
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var(id={}, shape={})", self.id, self.value().shape())
    }
}

impl Var {
    /// A snapshot of this node's value.
    pub fn value(&self) -> Tensor {
        self.tape.value(self.id)
    }

    /// The node id on its tape (stable for the tape's lifetime).
    pub fn id(&self) -> usize {
        self.id
    }

    fn same_tape(&self, other: &Var) {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "cannot combine vars from different tapes"
        );
    }

    fn binary(&self, other: &Var, op: fn(usize, usize) -> Op, name: &str) -> Var {
        self.same_tape(other);
        let (a, b) = (self.value(), other.value());
        let value = match op(0, 0) {
            Op::Add(..) => a.add(&b),
            Op::AddRow(..) => a.add_row(&b),
            Op::SubRow(..) => a.sub_row(&b),
            Op::Sub(..) => a.sub(&b),
            Op::Mul(..) => a.mul(&b),
            Op::MulRow(..) => a.mul_row(&b),
            Op::DivRow(..) => a.div_row(&b),
            Op::Matmul(..) => a.matmul(&b),
            _ => unreachable!(),
        }
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        self.tape.push(value, op(self.id, other.id))
    }

    /// Elementwise sum. See [`Tensor::add`].
    pub fn add(&self, other: &Var) -> Var {
        self.binary(other, Op::Add, "add")
    }

    /// Adds a `[d]` vector variable to every row of this `[n, d]` variable.
    pub fn add_row(&self, other: &Var) -> Var {
        self.binary(other, Op::AddRow, "add_row")
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Var) -> Var {
        self.binary(other, Op::Sub, "sub")
    }

    /// Subtracts a `[d]` vector variable from every row of this `[n, d]` variable.
    pub fn sub_row(&self, other: &Var) -> Var {
        self.binary(other, Op::SubRow, "sub_row")
    }

    /// Elementwise product.
    pub fn mul(&self, other: &Var) -> Var {
        self.binary(other, Op::Mul, "mul")
    }

    /// Multiplies every row of this `[n, d]` variable by a `[d]` variable.
    pub fn mul_row(&self, other: &Var) -> Var {
        self.binary(other, Op::MulRow, "mul_row")
    }

    /// Divides every row of this `[n, d]` variable by a `[d]` variable.
    pub fn div_row(&self, other: &Var) -> Var {
        self.binary(other, Op::DivRow, "div_row")
    }

    /// Matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        self.binary(other, Op::Matmul, "matmul")
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        let v = self.value().scale(-1.0);
        self.tape.push(v, Op::Neg(self.id))
    }

    /// Multiplies every element by the constant `c`.
    pub fn scale(&self, c: f32) -> Var {
        let v = self.value().scale(c);
        self.tape.push(v, Op::Scale(self.id, c))
    }

    /// Adds the constant `c` to every element.
    pub fn add_scalar(&self, c: f32) -> Var {
        let v = self.value().add_scalar(c);
        self.tape.push(v, Op::AddScalar(self.id, c))
    }

    /// Rectified linear unit, elementwise.
    pub fn relu(&self) -> Var {
        let v = self.value().map(|x| x.max(0.0));
        self.tape.push(v, Op::Relu(self.id))
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let v = self.value().map(f32::exp);
        self.tape.push(v, Op::Exp(self.id))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        let v = self.value().map(f32::ln);
        self.tape.push(v, Op::Ln(self.id))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let v = self.value().map(f32::sqrt);
        self.tape.push(v, Op::Sqrt(self.id))
    }

    /// Row-wise log-softmax of an `[n, c]` logit matrix.
    pub fn log_softmax(&self) -> Var {
        let v = self
            .value()
            .log_softmax_rows()
            .unwrap_or_else(|e| panic!("log_softmax: {e}"));
        self.tape.push(v, Op::LogSoftmax(self.id))
    }

    /// Column means of an `[n, d]` matrix, as a `[d]` vector.
    pub fn mean_axis0(&self) -> Var {
        let v = self
            .value()
            .mean_axis0()
            .unwrap_or_else(|e| panic!("mean_axis0: {e}"));
        self.tape.push(v, Op::MeanAxis0(self.id))
    }

    /// Sum of all elements, as a scalar variable.
    pub fn sum_all(&self) -> Var {
        let v = Tensor::scalar(self.value().sum_all());
        self.tape.push(v, Op::SumAll(self.id))
    }

    /// Mean of all elements, as a scalar variable.
    pub fn mean_all(&self) -> Var {
        let v = Tensor::scalar(
            self.value()
                .mean_all()
                .unwrap_or_else(|e| panic!("mean_all: {e}")),
        );
        self.tape.push(v, Op::MeanAll(self.id))
    }

    /// Negative log-likelihood loss over row-wise log-probabilities.
    ///
    /// `self` must be an `[n, c]` log-probability matrix (e.g. produced by
    /// [`Var::log_softmax`]); `targets` gives the true class per row. The
    /// result is the scalar `-(1/n) Σᵢ logp[i, targetᵢ]`.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the row count or a target is
    /// out of class range.
    pub fn nll_loss(&self, targets: &[usize]) -> Var {
        let lp = self.value();
        let (n, c) = (
            lp.nrows().expect("nll_loss: rank-2 input"),
            lp.ncols().unwrap(),
        );
        assert_eq!(targets.len(), n, "nll_loss: one target per row required");
        let mut acc = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < c, "nll_loss: target {t} out of range for {c} classes");
            acc -= lp.data()[i * c + t];
        }
        let v = Tensor::scalar(acc / n as f32);
        self.tape.push(v, Op::NllLoss(self.id, targets.to_vec()))
    }

    /// Runs the backward pass from this (scalar) variable.
    ///
    /// Returns the gradients of `self` with respect to every node that
    /// contributed to it, including leaves.
    ///
    /// # Panics
    ///
    /// Panics if `self` does not hold exactly one element.
    pub fn backward(&self) -> Gradients {
        let root = self.value();
        assert_eq!(root.len(), 1, "backward requires a scalar root");
        let inner = self.tape.inner.borrow();
        let mut grads: Vec<Option<Tensor>> = vec![None; inner.nodes.len()];
        grads[self.id] = Some(Tensor::full(root.dims(), 1.0));

        for id in (0..=self.id).rev() {
            let Some(g) = grads[id].clone() else { continue };
            let node = &inner.nodes[id];
            match &node.op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::AddRow(a, b) => {
                    let gb = g.sum_axis0().expect("add_row grad");
                    accumulate(&mut grads, *a, g);
                    accumulate(&mut grads, *b, gb);
                }
                Op::SubRow(a, b) => {
                    let gb = g.sum_axis0().expect("sub_row grad").scale(-1.0);
                    accumulate(&mut grads, *a, g);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let (av, bv) = (inner.nodes[*a].value.clone(), inner.nodes[*b].value.clone());
                    accumulate(&mut grads, *a, g.mul(&bv).expect("mul grad"));
                    accumulate(&mut grads, *b, g.mul(&av).expect("mul grad"));
                }
                Op::MulRow(a, b) => {
                    let (av, bv) = (inner.nodes[*a].value.clone(), inner.nodes[*b].value.clone());
                    accumulate(&mut grads, *a, g.mul_row(&bv).expect("mul_row grad"));
                    let gb = g
                        .mul(&av)
                        .expect("mul_row grad")
                        .sum_axis0()
                        .expect("mul_row grad");
                    accumulate(&mut grads, *b, gb);
                }
                Op::DivRow(a, b) => {
                    let (av, bv) = (inner.nodes[*a].value.clone(), inner.nodes[*b].value.clone());
                    accumulate(&mut grads, *a, g.div_row(&bv).expect("div_row grad"));
                    // d/db (a/b) = -a / b^2, summed over the broadcast rows.
                    let b_sq = bv.mul(&bv).expect("div_row grad");
                    let gb = g
                        .mul(&av)
                        .expect("div_row grad")
                        .div_row(&b_sq)
                        .expect("div_row grad")
                        .sum_axis0()
                        .expect("div_row grad")
                        .scale(-1.0);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Neg(a) => accumulate(&mut grads, *a, g.scale(-1.0)),
                Op::Scale(a, c) => accumulate(&mut grads, *a, g.scale(*c)),
                Op::AddScalar(a, _) => accumulate(&mut grads, *a, g),
                Op::Matmul(a, b) => {
                    let (av, bv) = (inner.nodes[*a].value.clone(), inner.nodes[*b].value.clone());
                    let ga = g
                        .matmul(&bv.transpose().expect("matmul grad"))
                        .expect("matmul grad");
                    let gb = av
                        .transpose()
                        .expect("matmul grad")
                        .matmul(&g)
                        .expect("matmul grad");
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Relu(a) => {
                    let mask = inner.nodes[*a]
                        .value
                        .map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    accumulate(&mut grads, *a, g.mul(&mask).expect("relu grad"));
                }
                Op::Exp(a) => {
                    accumulate(&mut grads, *a, g.mul(&node.value).expect("exp grad"));
                }
                Op::Ln(a) => {
                    let av = inner.nodes[*a].value.clone();
                    accumulate(&mut grads, *a, g.div(&av).expect("ln grad"));
                }
                Op::Sqrt(a) => {
                    let half_inv = node.value.map(|y| 0.5 / y);
                    accumulate(&mut grads, *a, g.mul(&half_inv).expect("sqrt grad"));
                }
                Op::LogSoftmax(a) => {
                    // d logsoftmax: g - softmax(a) * rowsum(g)
                    let p = node.value.map(f32::exp);
                    let row_sums = g.sum_axis1().expect("log_softmax grad");
                    let (n, c) = (
                        p.nrows().expect("log_softmax grad"),
                        p.ncols().expect("log_softmax grad"),
                    );
                    let mut out = Vec::with_capacity(n * c);
                    for i in 0..n {
                        let s = row_sums.data()[i];
                        for j in 0..c {
                            out.push(g.data()[i * c + j] - p.data()[i * c + j] * s);
                        }
                    }
                    accumulate(
                        &mut grads,
                        *a,
                        Tensor::from_vec(out, &[n, c]).expect("log_softmax grad"),
                    );
                }
                Op::MeanAxis0(a) => {
                    let av = &inner.nodes[*a].value;
                    let n = av.nrows().expect("mean_axis0 grad");
                    let scaled = g.scale(1.0 / n as f32);
                    let ga = Tensor::zeros(av.dims())
                        .add_row(&scaled)
                        .expect("mean_axis0 grad");
                    accumulate(&mut grads, *a, ga);
                }
                Op::SumAll(a) => {
                    let c = g.data()[0];
                    let av = &inner.nodes[*a].value;
                    accumulate(&mut grads, *a, Tensor::full(av.dims(), c));
                }
                Op::MeanAll(a) => {
                    let av = &inner.nodes[*a].value;
                    let c = g.data()[0] / av.len() as f32;
                    accumulate(&mut grads, *a, Tensor::full(av.dims(), c));
                }
                Op::NllLoss(a, targets) => {
                    let av = &inner.nodes[*a].value;
                    let (n, c) = (av.nrows().expect("nll grad"), av.ncols().expect("nll grad"));
                    let coef = -g.data()[0] / n as f32;
                    let mut out = vec![0.0f32; n * c];
                    for (i, &t) in targets.iter().enumerate() {
                        out[i * c + t] = coef;
                    }
                    accumulate(
                        &mut grads,
                        *a,
                        Tensor::from_vec(out, &[n, c]).expect("nll grad"),
                    );
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], id: usize, g: Tensor) {
    grads[id] = Some(match grads[id].take() {
        Some(existing) => existing
            .add(&g)
            .expect("gradient accumulation shape mismatch"),
        None => g,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Central finite-difference gradient of a scalar function of a tensor.
    fn fd<F: Fn(&Tensor) -> f32>(f: F, x0: &Tensor, eps: f32) -> Tensor {
        let mut out = Tensor::zeros(x0.dims());
        for i in 0..x0.len() {
            let mut p = x0.clone();
            p.data_mut()[i] += eps;
            let mut m = x0.clone();
            m.data_mut()[i] -= eps;
            out.data_mut()[i] = (f(&p) - f(&m)) / (2.0 * eps);
        }
        out
    }

    #[test]
    fn grad_matmul_chain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let x0 = Tensor::randn(&mut rng, &[3, 4], 0.0, 1.0);
        let w0 = Tensor::randn(&mut rng, &[4, 2], 0.0, 1.0);

        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let w = tape.leaf(w0.clone());
        let y = x.matmul(&w).relu().sum_all();
        let grads = y.backward();

        let w0c = w0.clone();
        let nx = fd(
            |x| x.matmul(&w0c).unwrap().map(|v| v.max(0.0)).sum_all(),
            &x0,
            1e-2,
        );
        assert!(grads.get(&x).unwrap().approx_eq(&nx, 1e-2));

        let x0c = x0.clone();
        let nw = fd(
            |w| x0c.matmul(w).unwrap().map(|v| v.max(0.0)).sum_all(),
            &w0,
            1e-2,
        );
        assert!(grads.get(&w).unwrap().approx_eq(&nw, 1e-2));
    }

    #[test]
    fn grad_log_softmax_nll() {
        let mut rng = SmallRng::seed_from_u64(2);
        let x0 = Tensor::randn(&mut rng, &[4, 3], 0.0, 1.0);
        let targets = vec![0usize, 2, 1, 1];

        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = x.log_softmax().nll_loss(&targets);
        let grads = loss.backward();

        let t = targets.clone();
        let n = fd(
            |x| {
                let lp = x.log_softmax_rows().unwrap();
                let c = lp.ncols().unwrap();
                -t.iter()
                    .enumerate()
                    .map(|(i, &ti)| lp.data()[i * c + ti])
                    .sum::<f32>()
                    / t.len() as f32
            },
            &x0,
            1e-2,
        );
        assert!(grads.get(&x).unwrap().approx_eq(&n, 1e-2));
    }

    #[test]
    fn grad_entropy_objective() {
        // The TENT objective: H = -(1/n) Σ_i Σ_c p log p with p = softmax(x).
        let mut rng = SmallRng::seed_from_u64(3);
        let x0 = Tensor::randn(&mut rng, &[3, 4], 0.0, 1.5);

        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let lp = x.log_softmax();
        let p = lp.exp();
        let h = p.mul(&lp).sum_all().scale(-1.0 / 3.0);
        let grads = h.backward();

        let n = fd(
            |x| {
                let lp = x.log_softmax_rows().unwrap();
                let p = lp.map(f32::exp);
                -p.mul(&lp).unwrap().sum_all() / 3.0
            },
            &x0,
            1e-2,
        );
        assert!(grads.get(&x).unwrap().approx_eq(&n, 5e-2));
    }

    #[test]
    fn grad_batchnorm_composite() {
        // x_hat = (x - mean0(x)) / sqrt(var0(x) + eps), gamma/beta affine.
        let mut rng = SmallRng::seed_from_u64(4);
        let x0 = Tensor::randn(&mut rng, &[5, 3], 1.0, 2.0);
        let gamma0 = Tensor::randn(&mut rng, &[3], 1.0, 0.1);
        let beta0 = Tensor::randn(&mut rng, &[3], 0.0, 0.1);
        let eps = 1e-5;

        let bn = |x: &Tensor, gamma: &Tensor, beta: &Tensor| -> f32 {
            let mean = x.mean_axis0().unwrap();
            let var = x.var_axis0().unwrap();
            let std = var.add_scalar(eps).map(f32::sqrt);
            let xh = x.sub_row(&mean).unwrap().div_row(&std).unwrap();
            let y = xh.mul_row(gamma).unwrap().add_row(beta).unwrap();
            y.map(|v| v * v).sum_all()
        };

        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let gamma = tape.leaf(gamma0.clone());
        let beta = tape.leaf(beta0.clone());
        let mean = x.mean_axis0();
        let centered = x.sub_row(&mean);
        let var = centered.mul(&centered).mean_axis0();
        let std = var.add_scalar(eps).sqrt();
        let xh = centered.div_row(&std);
        let y = xh.mul_row(&gamma).add_row(&beta);
        let out = y.mul(&y).sum_all();
        let grads = out.backward();

        let (g0, b0) = (gamma0.clone(), beta0.clone());
        let nx = fd(|x| bn(x, &g0, &b0), &x0, 1e-2);
        assert!(
            grads.get(&x).unwrap().approx_eq(&nx, 6e-2),
            "x grad mismatch: {:?} vs {:?}",
            grads.get(&x).unwrap(),
            nx
        );

        let (x0c, b0) = (x0.clone(), beta0.clone());
        let ng = fd(|g| bn(&x0c, g, &b0), &gamma0, 1e-3);
        assert!(grads.get(&gamma).unwrap().approx_eq(&ng, 5e-2));

        let (x0c, g0) = (x0, gamma0);
        let nb = fd(|b| bn(&x0c, &g0, b), &beta0, 1e-3);
        assert!(grads.get(&beta).unwrap().approx_eq(&nb, 5e-2));
    }

    #[test]
    fn grad_accumulates_over_reused_vars() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3.0], &[1, 1]).unwrap());
        let y = x.add(&x).sum_all(); // y = 2x
        let grads = y.backward();
        assert_eq!(grads.get(&x).unwrap().data(), &[2.0]);
    }

    #[test]
    fn grad_exp_ln_sqrt() {
        let x0 = Tensor::from_vec(vec![0.5, 1.5, 2.5, 4.0], &[2, 2]).unwrap();
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = x.exp().ln().sqrt().sum_all(); // sqrt(x) summed
        let grads = y.backward();
        let n = fd(|x| x.map(f32::sqrt).sum_all(), &x0, 1e-3);
        assert!(grads.get(&x).unwrap().approx_eq(&n, 1e-2));
    }

    #[test]
    fn grad_mean_axis0_broadcasts_evenly() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4, 2]));
        let y = x.mean_axis0().sum_all();
        let grads = y.backward();
        assert!(grads
            .get(&x)
            .unwrap()
            .approx_eq(&Tensor::full(&[4, 2], 0.25), 1e-6));
    }

    #[test]
    #[should_panic(expected = "different tapes")]
    fn mixing_tapes_panics() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.leaf(Tensor::ones(&[1]));
        let b = t2.leaf(Tensor::ones(&[1]));
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "scalar root")]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[2, 2]));
        let _ = x.backward();
    }

    #[test]
    fn leaf_gradients_available_for_inputs() {
        // ODIN needs ∂loss/∂input — verify leaves receive gradients.
        let tape = Tape::new();
        let input = tape.leaf(Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap());
        let loss = input.log_softmax().nll_loss(&[0]);
        let grads = loss.backward();
        assert!(grads.get(&input).is_some());
    }
}
