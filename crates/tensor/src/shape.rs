//! Shape bookkeeping for dense tensors.

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a [`crate::Tensor`], in row-major order.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that knows how to compute
/// element counts and row-major strides, and how to validate indices.
///
/// # Example
///
/// ```
/// use nazar_tensor::Shape;
///
/// let s = Shape::new(&[2, 3]);
/// assert_eq!(s.len(), 6);
/// assert_eq!(s.strides(), vec![3, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` if the shape holds no elements (some dimension is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (i, d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                index: axis,
                bound: self.0.len(),
            })
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error when the index rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.0.len() {
            return Err(TensorError::RankMismatch {
                op: "offset",
                expected: self.0.len(),
                actual: index.len(),
            });
        }
        let mut off = 0;
        for ((&i, &d), s) in index.iter().zip(self.0.iter()).zip(self.strides()) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Whether two shapes are identical.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn len_and_rank() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.len(), 6);
        assert_eq!(s.rank(), 2);
        assert_eq!(Shape::scalar().len(), 1);
        assert!(Shape::new(&[0, 3]).is_empty());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn display_matches_debug_of_dims() {
        assert_eq!(Shape::new(&[4, 2]).to_string(), "[4, 2]");
    }
}
