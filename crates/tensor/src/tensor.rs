//! Dense, row-major tensors, generic over element type and backend.

use crate::backend::{Backend, Buffer, Cpu, Element};
use crate::error::{Result, TensorError};
use crate::kernels;
use crate::shape::Shape;
use crate::workspace::Workspace;
use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A dense, row-major tensor: a [`Buffer`] of elements plus a [`Shape`].
///
/// `Tensor` is deliberately simple: flat backend storage plus a [`Shape`].
/// All operations allocate their output (there is no view machinery); the
/// sizes involved in the Nazar experiments are small enough that clarity
/// wins. The defaults `T = f32`, `A = Cpu` mean plain `Tensor` is exactly
/// the f32 host tensor the rest of the workspace is written against; the
/// quantized inference path uses `Tensor<i8>` / `Tensor<i32>` over the same
/// storage machinery.
///
/// Fallible operations (shape mismatches and the like) return
/// [`TensorError`]; infallible convenience wrappers panic only on programmer
/// error and document it.
///
/// # Example
///
/// ```
/// use nazar_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c.data(), a.data());
/// # Ok::<(), nazar_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T: Element = f32, A: Backend = Cpu> {
    data: Buffer<T, A>,
    shape: Shape,
}

impl<T: Element, A: Backend> Tensor<T, A> {
    // ------------------------------------------------------------------
    // Backend-generic constructors and accessors
    // ------------------------------------------------------------------

    /// Builds a tensor of any element type from a flat buffer and a shape.
    ///
    /// The f32-literal-friendly [`Tensor::from_vec`] is the common entry
    /// point; this is its dtype/backend-generic sibling.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the number of elements implied by `dims`.
    pub fn from_vec_in(data: Vec<T>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            data: Buffer::from_vec(data),
            shape,
        })
    }

    /// A tensor of any element type filled with [`Element::ZERO`].
    pub fn zeros_in(dims: &[usize]) -> Self {
        Self::full_in(dims, T::ZERO)
    }

    /// A tensor of any element type filled with `value`.
    pub fn full_in(dims: &[usize], value: T) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: Buffer::filled(shape.len(), value),
            shape,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying flat buffer, row-major.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying flat buffer.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer as a host vector.
    pub fn into_data(self) -> Vec<T> {
        self.data.into_vec()
    }

    /// Number of rows of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn nrows(&self) -> Result<usize> {
        self.expect_rank("nrows", 2)?;
        self.shape.dim(0)
    }

    /// Number of columns of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn ncols(&self) -> Result<usize> {
        self.expect_rank("ncols", 2)?;
        self.shape.dim(1)
    }

    /// Borrow row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or out-of-range rows.
    pub fn row(&self, i: usize) -> Result<&[T]> {
        let (n, d) = (self.nrows()?, self.ncols()?);
        if i >= n {
            return Err(TensorError::IndexOutOfBounds { index: i, bound: n });
        }
        Ok(&self.data[i * d..(i + 1) * d])
    }

    /// The single value of a scalar (or single-element) tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor holds more than one element.
    pub fn item(&self) -> Result<T> {
        if self.data.len() != 1 {
            return Err(TensorError::LengthMismatch {
                expected: 1,
                actual: self.data.len(),
            });
        }
        Ok(self.data[0])
    }

    fn expect_rank(&self, op: &'static str, rank: usize) -> Result<()> {
        if self.shape.rank() != rank {
            return Err(TensorError::RankMismatch {
                op,
                expected: rank,
                actual: self.shape.rank(),
            });
        }
        Ok(())
    }

    fn expect_same_shape(&self, op: &'static str, other: &Tensor<T, A>) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(())
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the number of elements implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        Tensor::from_vec_in(data, dims)
    }

    /// A scalar tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value].into(),
            shape: Shape::scalar(),
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor::zeros_in(dims)
    }

    /// A tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        Tensor::full_in(dims, value)
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A tensor of i.i.d. samples from `N(mean, std^2)` (Box–Muller).
    pub fn randn<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor {
            data: data.into(),
            shape,
        }
    }

    /// A tensor of i.i.d. samples from `U[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Self {
        let shape = Shape::new(dims);
        let data: Vec<f32> = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor {
            data: data.into(),
            shape,
        }
    }

    /// Stacks equal-length 1-D rows into an `[n, d]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if `rows` is empty or the rows disagree on length.
    pub fn stack_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let first = rows
            .first()
            .ok_or(TensorError::Empty { op: "stack_rows" })?;
        let d = first.len();
        let mut data = Vec::with_capacity(rows.len() * d);
        for r in rows {
            if r.len() != d {
                return Err(TensorError::ShapeMismatch {
                    op: "stack_rows",
                    lhs: vec![d],
                    rhs: vec![r.len()],
                });
            }
            data.extend_from_slice(r);
        }
        Tensor::from_vec(data, &[rows.len(), d])
    }

    // ------------------------------------------------------------------
    // Accessors (the structural ones live on the generic impl above)
    // ------------------------------------------------------------------

    /// Copies the given rows of a rank-2 tensor into a new matrix.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or out-of-range row indices.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Tensor> {
        let d = self.ncols()?;
        let mut data = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            data.extend_from_slice(self.row(i)?);
        }
        Tensor::from_vec(data, &[indices.len(), d])
    }

    /// Copies the contiguous row range `start..end` of a rank-2 tensor.
    ///
    /// Equivalent to `select_rows` over `(start..end)` but a single slice
    /// copy — the batching loops use this for sequential mini-batches.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or an out-of-range/backwards range.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        let (n, d) = (self.nrows()?, self.ncols()?);
        if start > end || end > n {
            return Err(TensorError::IndexOutOfBounds {
                index: end.max(start),
                bound: n,
            });
        }
        Tensor::from_vec(self.data[start * d..end * d].to_vec(), &[end - start, d])
    }

    // ------------------------------------------------------------------
    // Elementwise
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = vec![0.0f32; self.data.len()];
        kernels::map_into(&self.data, &mut data, f);
        Tensor {
            data: data.into(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place, without allocating.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        kernels::map_assign(&mut self.data, f);
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.expect_same_shape("zip_with", other)?;
        let mut data = vec![0.0f32; self.data.len()];
        kernels::zip_into(&self.data, &other.data, &mut data, f);
        Ok(Tensor {
            data: data.into(),
            shape: self.shape.clone(),
        })
    }

    /// Combines this tensor with `other` elementwise in place:
    /// `self[i] = f(self[i], other[i])`, without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_inplace(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<()> {
        self.expect_same_shape("zip_inplace", other)?;
        kernels::zip_assign(&mut self.data, &other.data, f);
        Ok(())
    }

    /// In-place elementwise sum: `self += other`, without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.expect_same_shape("add_assign", other)?;
        kernels::add_assign(&mut self.data, &other.data);
        Ok(())
    }

    /// In-place scaled accumulation: `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy_assign(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.expect_same_shape("axpy_assign", other)?;
        kernels::axpy_into(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// In-place scaling: `self *= c`, without allocating.
    pub fn scale_assign(&mut self, c: f32) {
        kernels::scale_assign(&mut self.data, c);
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a / b)
    }

    /// Multiplies every element by `c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// Adds `c` to every element.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        self.map(|x| x + c)
    }

    /// Clamps every element to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    // ------------------------------------------------------------------
    // Row-broadcast operations ([n, d] combined with [d])
    // ------------------------------------------------------------------

    /// Adds a `[d]` vector to every row of an `[n, d]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a matrix or `row` is not `[d]`.
    pub fn add_row(&self, row: &Tensor) -> Result<Tensor> {
        self.broadcast_row("add_row", row, |a, b| a + b)
    }

    /// Subtracts a `[d]` vector from every row of an `[n, d]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a matrix or `row` is not `[d]`.
    pub fn sub_row(&self, row: &Tensor) -> Result<Tensor> {
        self.broadcast_row("sub_row", row, |a, b| a - b)
    }

    /// Multiplies every row of an `[n, d]` matrix by a `[d]` vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a matrix or `row` is not `[d]`.
    pub fn mul_row(&self, row: &Tensor) -> Result<Tensor> {
        self.broadcast_row("mul_row", row, |a, b| a * b)
    }

    /// Divides every row of an `[n, d]` matrix by a `[d]` vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a matrix or `row` is not `[d]`.
    pub fn div_row(&self, row: &Tensor) -> Result<Tensor> {
        self.broadcast_row("div_row", row, |a, b| a / b)
    }

    fn broadcast_row(
        &self,
        op: &'static str,
        row: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        let d = self.ncols()?;
        if row.shape.rank() != 1 || row.len() != d {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: row.dims().to_vec(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len());
        for chunk in self.data.chunks_exact(d) {
            for (a, b) in chunk.iter().zip(row.data.iter()) {
                data.push(f(*a, *b));
            }
        }
        Ok(Tensor {
            data: data.into(),
            shape: self.shape.clone(),
        })
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product of `[n, k] x [k, m] -> [n, m]`.
    ///
    /// Thin wrapper over [`kernels::matmul_into`] (tiled, packed-B,
    /// row-parallel); scratch comes from the thread-local [`Workspace`].
    ///
    /// # Errors
    ///
    /// Returns an error unless both tensors are matrices with matching
    /// inner dimension.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (n, k) = (self.nrows()?, self.ncols()?);
        let (k2, m) = (other.nrows()?, other.ncols()?);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; n * m];
        Workspace::with_thread_local(|ws| {
            kernels::matmul_into(&self.data, &other.data, n, k, m, &mut out, ws);
        });
        Tensor::from_vec(out, &[n, m])
    }

    /// Transpose of a rank-2 tensor (cache-blocked kernel).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        let (n, m) = (self.nrows()?, self.ncols()?);
        let mut out = vec![0.0f32; n * m];
        kernels::transpose_into(&self.data, n, m, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// Euclidean norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn mean_all(&self) -> Result<f32> {
        if self.data.is_empty() {
            return Err(TensorError::Empty { op: "mean_all" });
        }
        let n = self.data.len();
        if n > kernels::F32_EXACT_COUNT {
            // `n as f32` rounds above 2^24, silently biasing the mean at
            // fleet scale; accumulate and divide in f64, round once.
            let sum: f64 = self.data.iter().map(|&x| f64::from(x)).sum();
            return Ok((sum / n as f64) as f32);
        }
        Ok(self.sum_all() / n as f32)
    }

    /// Column sums of an `[n, d]` matrix, as a `[d]` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_axis0(&self) -> Result<Tensor> {
        let (n, d) = (self.nrows()?, self.ncols()?);
        let mut out = vec![0.0f32; d];
        kernels::sum_axis0_into(&self.data, n, d, &mut out);
        Tensor::from_vec(out, &[d])
    }

    /// Column means of an `[n, d]` matrix, as a `[d]` vector.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or when the matrix has zero rows.
    pub fn mean_axis0(&self) -> Result<Tensor> {
        let n = self.nrows()?;
        if n == 0 {
            return Err(TensorError::Empty { op: "mean_axis0" });
        }
        if n > kernels::F32_EXACT_COUNT {
            // See `mean_all`: keep the denominator (and the column sums,
            // which overflow f32 precision long before the count does)
            // in f64 above the exact-count range.
            let d = self.ncols()?;
            let mut sums = vec![0.0f64; d];
            for row in self.data.chunks_exact(d) {
                for (s, &x) in sums.iter_mut().zip(row) {
                    *s += f64::from(x);
                }
            }
            let data: Vec<f32> = sums.iter().map(|&s| (s / n as f64) as f32).collect();
            return Tensor::from_vec(data, &[d]);
        }
        Ok(self.sum_axis0()?.scale(1.0 / n as f32))
    }

    /// Population variance of each column of an `[n, d]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or when the matrix has zero rows.
    pub fn var_axis0(&self) -> Result<Tensor> {
        let n = self.nrows()?;
        if n == 0 {
            return Err(TensorError::Empty { op: "var_axis0" });
        }
        let mean = self.mean_axis0()?;
        let centered = self.sub_row(&mean)?;
        let sq = centered.map(|x| x * x);
        sq.mean_axis0()
    }

    /// Row sums of an `[n, d]` matrix, as an `[n]` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_axis1(&self) -> Result<Tensor> {
        let (n, d) = (self.nrows()?, self.ncols()?);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.data[i * d..(i + 1) * d].iter().sum());
        }
        Tensor::from_vec(out, &[n])
    }

    /// Maximum of each row of an `[n, d]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or zero-width rows.
    pub fn max_axis1(&self) -> Result<Tensor> {
        let (n, d) = (self.nrows()?, self.ncols()?);
        if d == 0 {
            return Err(TensorError::Empty { op: "max_axis1" });
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let m = self.data[i * d..(i + 1) * d]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            out.push(m);
        }
        Tensor::from_vec(out, &[n])
    }

    /// Index of the maximum of each row of an `[n, d]` matrix.
    ///
    /// Ties resolve to the lowest index.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or zero-width rows.
    pub fn argmax_axis1(&self) -> Result<Vec<usize>> {
        let (n, d) = (self.nrows()?, self.ncols()?);
        if d == 0 {
            return Err(TensorError::Empty { op: "argmax_axis1" });
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row = &self.data[i * d..(i + 1) * d];
            let mut best = 0;
            for (j, &x) in row.iter().enumerate() {
                if x > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Vertically concatenates rank-2 tensors with equal column counts.
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty or column counts disagree.
    pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or(TensorError::Empty { op: "concat_rows" })?;
        let d = first.ncols()?;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            if p.ncols()? != d {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_rows",
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
            rows += p.nrows()?;
            data.extend_from_slice(p.data());
        }
        Tensor::from_vec(data, &[rows, d])
    }

    /// Splits a rank-2 tensor into chunks of at most `chunk_rows` rows.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices; panics if `chunk_rows == 0`.
    pub fn split_rows(&self, chunk_rows: usize) -> Result<Vec<Tensor>> {
        assert!(chunk_rows > 0, "chunk_rows must be nonzero");
        let (n, d) = (self.nrows()?, self.ncols()?);
        let mut out = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + chunk_rows).min(n);
            let slice = self.data()[start * d..end * d].to_vec();
            out.push(Tensor::from_vec(slice, &[end - start, d])?);
            start = end;
        }
        Ok(out)
    }

    /// Row means of an `[n, d]` matrix, as an `[n]` vector.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or zero-width rows.
    pub fn mean_axis1(&self) -> Result<Tensor> {
        let d = self.ncols()?;
        if d == 0 {
            return Err(TensorError::Empty { op: "mean_axis1" });
        }
        if d > kernels::F32_EXACT_COUNT {
            // See `mean_all`: f64 accumulation once the row width exceeds
            // the f32-exact integer range.
            let n = self.nrows()?;
            let mut data = Vec::with_capacity(n);
            for row in self.data.chunks_exact(d) {
                let sum: f64 = row.iter().map(|&x| f64::from(x)).sum();
                data.push((sum / d as f64) as f32);
            }
            return Tensor::from_vec(data, &[n]);
        }
        Ok(self.sum_axis1()?.scale(1.0 / d as f32))
    }

    /// Copies the given columns of a rank-2 tensor into a new matrix.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or out-of-range column indices.
    pub fn select_cols(&self, indices: &[usize]) -> Result<Tensor> {
        let (n, d) = (self.nrows()?, self.ncols()?);
        for &j in indices {
            if j >= d {
                return Err(TensorError::IndexOutOfBounds { index: j, bound: d });
            }
        }
        let mut data = Vec::with_capacity(n * indices.len());
        for i in 0..n {
            let row = &self.data()[i * d..(i + 1) * d];
            for &j in indices {
                data.push(row[j]);
            }
        }
        Tensor::from_vec(data, &[n, indices.len()])
    }

    // ------------------------------------------------------------------
    // Softmax family (numerically stable)
    // ------------------------------------------------------------------

    /// Row-wise softmax of an `[n, c]` logit matrix.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or zero-width rows.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        Ok(self.log_softmax_rows()?.map(f32::exp))
    }

    /// Row-wise log-softmax of an `[n, c]` logit matrix.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or zero-width rows.
    pub fn log_softmax_rows(&self) -> Result<Tensor> {
        let (n, c) = (self.nrows()?, self.ncols()?);
        if c == 0 {
            return Err(TensorError::Empty {
                op: "log_softmax_rows",
            });
        }
        let mut out = Vec::with_capacity(n * c);
        for i in 0..n {
            let row = &self.data[i * c..(i + 1) * c];
            // At t = 1.0 the shared helper's divide/multiply by the
            // temperature are bitwise no-ops, so this is the historical
            // max-shifted formula exactly.
            let lse = kernels::log_sum_exp(row, 1.0);
            out.extend(row.iter().map(|&x| x - lse));
        }
        Tensor::from_vec(out, &[n, c])
    }

    // ------------------------------------------------------------------
    // Test helpers
    // ------------------------------------------------------------------

    /// Whether all elements differ by at most `tol` from `other`'s.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape.same_as(&other.shape)
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

// Hand-written serde impls for the default f32/Cpu tensor, matching the wire
// format the former `#[derive(Serialize, Deserialize)]` produced (a map of
// "data" and "shape") so persisted patches/checkpoints keep round-tripping.
impl Serialize for Tensor {
    fn to_value(&self) -> Value {
        let data: Vec<f32> = self.data.as_slice().to_vec();
        Value::Map(vec![
            ("data".to_string(), data.to_value()),
            ("shape".to_string(), self.shape.to_value()),
        ])
    }
}

impl Deserialize for Tensor {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::type_mismatch("map for Tensor", v))?;
        let data: Vec<f32> = serde::value_get(entries, "data")
            .map(Deserialize::from_value)
            .transpose()?
            .ok_or_else(|| DeError::missing_field("data", "Tensor"))?;
        let shape: Shape = serde::value_get(entries, "shape")
            .map(Deserialize::from_value)
            .transpose()?
            .ok_or_else(|| DeError::missing_field("shape", "Tensor"))?;
        if data.len() != shape.len() {
            return Err(DeError::custom(format!(
                "Tensor data length {} does not match shape {:?}",
                data.len(),
                shape.dims()
            )));
        }
        Ok(Tensor {
            data: data.into(),
            shape,
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{}(", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn m(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn matmul_identity_and_known_product() {
        let a = m(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        let b = m(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dim() {
        let a = m(&[1.0; 6], &[2, 3]);
        let b = m(&[1.0; 4], &[2, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn row_broadcast_ops() {
        let a = m(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = m(&[10.0, 20.0], &[2]);
        assert_eq!(a.add_row(&r).unwrap().data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.mul_row(&r).unwrap().data(), &[10.0, 40.0, 30.0, 80.0]);
        assert_eq!(a.sub_row(&r).unwrap().data(), &[-9.0, -18.0, -7.0, -16.0]);
    }

    #[test]
    fn reductions() {
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum_all(), 21.0);
        assert_eq!(a.mean_all().unwrap(), 3.5);
        assert_eq!(a.sum_axis0().unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.mean_axis0().unwrap().data(), &[2.5, 3.5, 4.5]);
        assert_eq!(a.sum_axis1().unwrap().data(), &[6.0, 15.0]);
        assert_eq!(a.max_axis1().unwrap().data(), &[3.0, 6.0]);
        assert_eq!(a.argmax_axis1().unwrap(), vec![2, 2]);
    }

    #[test]
    fn var_axis0_matches_population_variance() {
        let a = m(&[1.0, 10.0, 3.0, 20.0], &[2, 2]);
        let v = a.var_axis0().unwrap();
        assert!(v.approx_eq(&m(&[1.0, 25.0], &[2]), 1e-6));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_stable() {
        let a = m(&[1000.0, 1001.0, 999.0, -1000.0, -1001.0, -999.0], &[2, 3]);
        let p = a.softmax_rows().unwrap();
        for i in 0..2 {
            let s: f32 = p.row(i).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {i} sums to {s}");
        }
        assert!(p.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = Tensor::randn(&mut rng, &[4, 5], 0.0, 2.0);
        let lp = a.log_softmax_rows().unwrap();
        let p = a.softmax_rows().unwrap();
        assert!(lp.map(f32::exp).approx_eq(&p, 1e-5));
    }

    #[test]
    fn select_rows_copies_requested_rows() {
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let s = a.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.data(), &[5.0, 6.0, 1.0, 2.0]);
        assert!(a.select_rows(&[3]).is_err());
    }

    #[test]
    fn stack_rows_validates_widths() {
        let t = Tensor::stack_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(t.dims(), &[2, 2]);
        assert!(Tensor::stack_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Tensor::stack_rows(&[]).is_err());
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = m(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = m(&[5.0, 6.0], &[1, 2]);
        let c = Tensor::concat_rows(&[&a, &b]).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        let parts = c.split_rows(2).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
        assert!(Tensor::concat_rows(&[]).is_err());
        assert!(Tensor::concat_rows(&[&a, &m(&[1.0], &[1, 1])]).is_err());
    }

    #[test]
    fn mean_axis1_and_select_cols() {
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.mean_axis1().unwrap().data(), &[2.0, 5.0]);
        let s = a.select_cols(&[2, 0]).unwrap();
        assert_eq!(s.data(), &[3.0, 1.0, 6.0, 4.0]);
        assert!(a.select_cols(&[3]).is_err());
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = SmallRng::seed_from_u64(42);
        let t = Tensor::randn(&mut rng, &[10_000], 2.0, 3.0);
        let mean = t.mean_all().unwrap();
        let var = t.map(|x| (x - mean) * (x - mean)).mean_all().unwrap();
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
        assert!((var - 9.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn display_previews_values() {
        let t = m(&[1.0, 2.0], &[2]);
        let s = t.to_string();
        assert!(s.contains("1.0000") && s.contains("2.0000"));
    }
}
