//! Dependency-free scoped-thread parallel helpers.
//!
//! All parallelism in the workspace goes through this module:
//! [`num_threads`] reads the `NAZAR_NUM_THREADS` environment knob once
//! (defaulting to the machine's available parallelism), [`par_row_bands`]
//! splits a row-major output buffer into contiguous row bands for the
//! matmul kernel, and [`par_map`] fans a work list out across scoped
//! threads while preserving input order — which is what keeps parallel
//! runs deterministic.
//!
//! Everything is built on [`std::thread::scope`]; no external crates.

use nazar_obs::LazyHistogram;
use std::sync::OnceLock;

static FANOUT: LazyHistogram = LazyHistogram::new_volatile(
    "nazar_tensor_parallel_fanout_width",
    "Worker threads actually used per parallel fan-out",
    &[("op", "par_map")],
    nazar_obs::pow2_buckets,
);
static BAND_FANOUT: LazyHistogram = LazyHistogram::new_volatile(
    "nazar_tensor_parallel_fanout_width",
    "Worker threads actually used per parallel fan-out",
    &[("op", "par_row_bands")],
    nazar_obs::pow2_buckets,
);

/// Number of worker threads to use, read once from `NAZAR_NUM_THREADS`.
///
/// Values of `0` or unparsable strings fall back to the default:
/// [`std::thread::available_parallelism`] (or 1 if that is unavailable).
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        match std::env::var("NAZAR_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// Splits `out` (an `n_rows` x `row_len` row-major buffer) into at most
/// `threads` contiguous row bands and runs `f(first_row, band)` on each,
/// in parallel when `threads > 1`.
///
/// Bands are disjoint, so each invocation of `f` owns its slice; results
/// are bitwise independent of the thread count as long as `f` itself only
/// depends on `first_row` and the band contents.
///
/// # Panics
///
/// Panics if `out.len() != n_rows * row_len` or a worker thread panics.
pub fn par_row_bands<T, F>(out: &mut [T], n_rows: usize, row_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert_eq!(out.len(), n_rows * row_len, "row band buffer length");
    let threads = threads.clamp(1, n_rows.max(1));
    if threads <= 1 || n_rows == 0 {
        BAND_FANOUT.observe(1.0);
        f(0, out);
        return;
    }
    BAND_FANOUT.observe(threads as f64);
    let rows_per_band = n_rows.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        for (band_idx, band) in out.chunks_mut(rows_per_band * row_len).enumerate() {
            s.spawn(move || f(band_idx * rows_per_band, band));
        }
    });
}

/// Maps `f` over `items` on up to [`num_threads`] scoped threads,
/// returning results in input order.
///
/// Falls back to a sequential map when there is one worker or one item,
/// so callers need no special casing. Panics from `f` propagate.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(items, num_threads(), f)
}

/// [`par_map`] with an explicit worker count instead of the
/// `NAZAR_NUM_THREADS` default.
///
/// This is the determinism-audit hook: because results are merged in input
/// order, the output is bitwise independent of `threads`, and test suites
/// (e.g. `nazar-log`'s differential query suite) assert exactly that by
/// sweeping widths within one process — something the env knob cannot do,
/// since [`num_threads`] latches on first read.
pub fn par_map_with<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        FANOUT.observe(1.0);
        return items.into_iter().map(f).collect();
    }
    FANOUT.observe(threads as f64);
    // Deal items into `threads` contiguous batches, preserving order.
    let per_batch = items.len().div_ceil(threads);
    let mut batches: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(per_batch));
        batches.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| s.spawn(move || batch.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect::<Vec<usize>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<usize>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert!(par_map(Vec::<usize>::new(), |i| i).is_empty());
        assert_eq!(par_map(vec![7], |i| i + 1), vec![8]);
    }

    #[test]
    fn row_bands_cover_every_row_once() {
        let (n, d) = (13, 4);
        let mut buf = vec![0.0f32; n * d];
        for threads in [1, 2, 4, 32] {
            buf.fill(0.0);
            par_row_bands(&mut buf, n, d, threads, |first_row, band| {
                for (r, row) in band.chunks_mut(d).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first_row + r) as f32;
                    }
                }
            });
            for (i, row) in buf.chunks(d).enumerate() {
                assert!(row.iter().all(|&v| v == i as f32), "threads {threads}");
            }
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
