//! Allocation-free tensor kernels over raw `f32` slices.
//!
//! Every kernel writes into a caller-provided output (`*_into`) or mutates
//! in place (`*_assign`), so hot loops — the autograd backward sweep, the
//! optimizers, TENT adaptation — can recycle buffers through a
//! [`Workspace`] instead of allocating per operation.
//! The allocating [`Tensor`](crate::Tensor) methods are thin wrappers over
//! these kernels.
//!
//! # Determinism
//!
//! [`matmul_into`] tiles and packs its right-hand operand for cache
//! locality and splits output rows across threads, but accumulates every
//! output element in the same `p = 0..k` order as the textbook
//! `i, p, j` triple loop. Its results are therefore bitwise identical to
//! the naive loop regardless of tiling or thread count. The same holds
//! for [`matmul_at_b_into`] / [`matmul_a_bt_into`] against their
//! transpose-then-multiply references, and for [`sum_axis0_into`] against
//! a row-ordered accumulation.

use crate::parallel::{num_threads, par_row_bands};
use crate::simd::{self, SimdTier};
use crate::workspace::Workspace;

/// Column-tile width of the packed-B matmul micro-kernel.
const TILE_COLS: usize = 16;

/// Column-panel width of the SIMD matmul (two AVX-512 registers).
const SIMD_PANEL: usize = 32;

/// Largest integer count exactly representable in an `f32` (2^24). Above
/// this, `count as f32` silently rounds, so mean/variance denominators and
/// count-weighted sums that feed detection thresholds switch to `f64`.
pub const F32_EXACT_COUNT: usize = 1 << 24;

/// Rows per matmul register block. Together with [`TILE_COLS`] this gives
/// the micro-kernel `4 x 16 = 64` independent accumulator lanes, enough
/// to keep the FMA pipeline full — a single row's tile is one dependency
/// chain and stalls on floating-point add latency.
const MICRO_ROWS: usize = 4;

/// Square tile edge of the cache-blocked transpose.
const TRANSPOSE_TILE: usize = 32;

/// Minimum multiply-add count before the matmul goes multi-threaded;
/// below this the scoped-thread spawn overhead dominates.
const PAR_MIN_MULADDS: usize = 1 << 18;

/// `out = a · b` for row-major `a: [n, k]`, `b: [k, m]`, `out: [n, m]`.
///
/// Packs `b` into `TILE_COLS`-wide column panels (scratch from `ws`) and
/// row-blocks the output across up to [`num_threads`] scoped threads.
/// See the module docs for the determinism guarantee.
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
pub fn matmul_into(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    out: &mut [f32],
    ws: &mut Workspace,
) {
    // `saturating_mul`: at fleet scale the muladd count can exceed
    // `usize::MAX / 2` in theory; saturation errs toward "go parallel"
    // instead of wrapping to a tiny count and silently serializing.
    let muladds = n.saturating_mul(k).saturating_mul(m);
    let threads = if muladds >= PAR_MIN_MULADDS {
        num_threads()
    } else {
        1
    };
    matmul_into_threads(a, b, n, k, m, out, ws, threads);
}

/// [`matmul_into`] with an explicit thread count (primarily for the
/// determinism tests; `threads <= 1` forces the sequential path).
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn matmul_into_threads(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    out: &mut [f32],
    ws: &mut Workspace,
    threads: usize,
) {
    matmul_into_tier(a, b, n, k, m, out, ws, threads, simd::env_tier());
}

/// [`matmul_into_threads`] with an explicit [`SimdTier`] instead of the
/// latched `NAZAR_TENSOR_SIMD` default — the hook the equivalence suite
/// uses to sweep scalar/exact/fast within one process.
///
/// `SimdTier::Off` (or any vector tier on a CPU without AVX-512F) runs the
/// scalar packed-panel kernel; `Exact` runs the bitwise-identical vector
/// kernel; `Fast` runs the FMA-contracted kernel.
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn matmul_into_tier(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    out: &mut [f32],
    ws: &mut Workspace,
    threads: usize,
    tier: SimdTier,
) {
    assert_eq!(a.len(), n * k, "matmul lhs length");
    assert_eq!(b.len(), k * m, "matmul rhs length");
    assert_eq!(out.len(), n * m, "matmul out length");
    if n == 0 || m == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }

    let tier = simd::effective(tier);
    if tier.is_vector() {
        // SIMD path: pack only the full 32-wide column panels (p-major at
        // offset j0 * k); the `m % 32` column tail is read from `b`
        // directly by the in-band scalar loop.
        let full_cols = m - m % SIMD_PANEL;
        let mut packed = ws.take_filled_later(k * full_cols);
        let mut j0 = 0;
        while j0 < full_cols {
            let panel = &mut packed[j0 * k..(j0 + SIMD_PANEL) * k];
            for p in 0..k {
                panel[p * SIMD_PANEL..(p + 1) * SIMD_PANEL]
                    .copy_from_slice(&b[p * m + j0..p * m + j0 + SIMD_PANEL]);
            }
            j0 += SIMD_PANEL;
        }
        let packed_ref: &[f32] = &packed;
        par_row_bands(out, n, m, threads, |first_row, band| {
            let handled = simd::matmul_band(tier, a, b, packed_ref, k, m, first_row, band);
            debug_assert!(handled, "vector tier was verified available");
        });
        ws.recycle(packed);
        return;
    }

    // Pack B into column panels: panel for columns [j0, j0+w) is stored
    // p-major at offset j0 * k, so the micro-kernel reads it sequentially.
    let mut packed = ws.take_filled_later(k * m);
    let mut j0 = 0;
    while j0 < m {
        let w = (m - j0).min(TILE_COLS);
        let panel = &mut packed[j0 * k..j0 * k + w * k];
        for p in 0..k {
            panel[p * w..(p + 1) * w].copy_from_slice(&b[p * m + j0..p * m + j0 + w]);
        }
        j0 += w;
    }

    let packed_ref: &[f32] = &packed;
    par_row_bands(out, n, m, threads, |first_row, band| {
        let band_rows = band.len() / m;
        let mut r = 0;
        // Register-blocked main loop: MICRO_ROWS rows per iteration.
        while r + MICRO_ROWS <= band_rows {
            let i = first_row + r;
            let out_block = &mut band[r * m..(r + MICRO_ROWS) * m];
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            let mut j0 = 0;
            while j0 < m {
                let w = (m - j0).min(TILE_COLS);
                let panel = &packed_ref[j0 * k..j0 * k + w * k];
                if w == TILE_COLS {
                    let mut acc = [[0.0f32; TILE_COLS]; MICRO_ROWS];
                    for ((((bb, &p0), &p1), &p2), &p3) in panel
                        .chunks_exact(TILE_COLS)
                        .zip(a0)
                        .zip(a1)
                        .zip(a2)
                        .zip(a3)
                    {
                        let bb: &[f32; TILE_COLS] = bb.try_into().expect("exact chunk");
                        for t in 0..TILE_COLS {
                            let bv = bb[t];
                            acc[0][t] += p0 * bv;
                            acc[1][t] += p1 * bv;
                            acc[2][t] += p2 * bv;
                            acc[3][t] += p3 * bv;
                        }
                    }
                    for (q, accq) in acc.iter().enumerate() {
                        out_block[q * m + j0..q * m + j0 + TILE_COLS].copy_from_slice(accq);
                    }
                } else {
                    for q in 0..MICRO_ROWS {
                        let a_row = &a[(i + q) * k..(i + q + 1) * k];
                        let tile = &mut out_block[q * m + j0..q * m + j0 + w];
                        tile.fill(0.0);
                        for (p, &ap) in a_row.iter().enumerate() {
                            let brow = &panel[p * w..(p + 1) * w];
                            for (ac, &bv) in tile.iter_mut().zip(brow) {
                                *ac += ap * bv;
                            }
                        }
                    }
                }
                j0 += w;
            }
            r += MICRO_ROWS;
        }
        // Remaining 1..MICRO_ROWS rows, one at a time.
        for (rr, out_row) in band[r * m..].chunks_mut(m).enumerate() {
            let row = first_row + r + rr;
            let a_row = &a[row * k..(row + 1) * k];
            let mut j0 = 0;
            while j0 < m {
                let w = (m - j0).min(TILE_COLS);
                let panel = &packed_ref[j0 * k..j0 * k + w * k];
                if w == TILE_COLS {
                    let mut acc = [0.0f32; TILE_COLS];
                    for (bb, &ap) in panel.chunks_exact(TILE_COLS).zip(a_row) {
                        let bb: &[f32; TILE_COLS] = bb.try_into().expect("exact chunk");
                        for (ac, &bv) in acc.iter_mut().zip(bb) {
                            *ac += ap * bv;
                        }
                    }
                    out_row[j0..j0 + TILE_COLS].copy_from_slice(&acc);
                } else {
                    let tile = &mut out_row[j0..j0 + w];
                    tile.fill(0.0);
                    for (p, &ap) in a_row.iter().enumerate() {
                        let brow = &panel[p * w..(p + 1) * w];
                        for (ac, &bv) in tile.iter_mut().zip(brow) {
                            *ac += ap * bv;
                        }
                    }
                }
                j0 += w;
            }
        }
    });
    ws.recycle(packed);
}

/// `out += aᵀ · g` for row-major `a: [n, k]`, `g: [n, m]`, `out: [k, m]`.
///
/// Equivalent to `a.transpose().matmul(g)` without materializing the
/// transpose; each output element accumulates over `i = 0..n` in order,
/// matching the reference product. Accumulates into `out`, so zero it
/// first for a plain product — the autograd sweep exploits the `+=` to
/// fuse gradient accumulation.
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
pub fn matmul_at_b_into(a: &[f32], g: &[f32], n: usize, k: usize, m: usize, out: &mut [f32]) {
    assert_eq!(a.len(), n * k, "matmul_at_b lhs length");
    assert_eq!(g.len(), n * m, "matmul_at_b rhs length");
    assert_eq!(out.len(), k * m, "matmul_at_b out length");
    for i in 0..n {
        let a_row = &a[i * k..(i + 1) * k];
        let g_row = &g[i * m..(i + 1) * m];
        for (p, &ap) in a_row.iter().enumerate() {
            let out_row = &mut out[p * m..(p + 1) * m];
            for (o, &gv) in out_row.iter_mut().zip(g_row) {
                *o += ap * gv;
            }
        }
    }
}

/// `out += g · bᵀ` for row-major `g: [n, m]`, `b: [k, m]`, `out: [n, k]`.
///
/// Equivalent to `g.matmul(&b.transpose())` without materializing the
/// transpose: each output element is a dot product over `j = 0..m` in
/// order. Accumulates into `out` (zero it first for a plain product).
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
pub fn matmul_a_bt_into(g: &[f32], b: &[f32], n: usize, m: usize, k: usize, out: &mut [f32]) {
    assert_eq!(g.len(), n * m, "matmul_a_bt lhs length");
    assert_eq!(b.len(), k * m, "matmul_a_bt rhs length");
    assert_eq!(out.len(), n * k, "matmul_a_bt out length");
    for i in 0..n {
        let g_row = &g[i * m..(i + 1) * m];
        let out_row = &mut out[i * k..(i + 1) * k];
        for (p, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[p * m..(p + 1) * m];
            let mut acc = 0.0f32;
            for (&gv, &bv) in g_row.iter().zip(b_row) {
                acc += gv * bv;
            }
            *o += acc;
        }
    }
}

/// `dst = srcᵀ` for row-major `src: [n, m]`, `dst: [m, n]`, using
/// `TRANSPOSE_TILE`-square cache blocks so both matrices are walked in
/// cache-line-sized strides.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the given dimensions.
pub fn transpose_into(src: &[f32], n: usize, m: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), n * m, "transpose src length");
    assert_eq!(dst.len(), n * m, "transpose dst length");
    let t = TRANSPOSE_TILE;
    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + t).min(n);
        let mut j0 = 0;
        while j0 < m {
            let j1 = (j0 + t).min(m);
            for i in i0..i1 {
                for j in j0..j1 {
                    dst[j * n + i] = src[i * m + j];
                }
            }
            j0 = j1;
        }
        i0 = i1;
    }
}

/// `out[i] = a[i] + b[i]`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    zip_into(a, b, out, |x, y| x + y);
}

/// `dst[i] += src[i]` — the in-place gradient-accumulation primitive.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_assign length");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `y[i] += alpha * x[i]` (the BLAS `axpy`).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy_into(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// `dst[i] *= c`.
pub fn scale_assign(dst: &mut [f32], c: f32) {
    for d in dst.iter_mut() {
        *d *= c;
    }
}

/// `dst[i] += a[i] * b[i]` — fused multiply-accumulate, the workhorse of
/// the backward sweep's product-rule contributions.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn fma_assign(dst: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), a.len(), "fma lhs length");
    assert_eq!(dst.len(), b.len(), "fma rhs length");
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d += x * y;
    }
}

/// Column sums of row-major `a: [n, d]` into `out: [d]`, accumulating
/// rows in `i = 0..n` order (bitwise identical to the naive loop).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the given dimensions.
pub fn sum_axis0_into(a: &[f32], n: usize, d: usize, out: &mut [f32]) {
    assert_eq!(out.len(), d, "sum_axis0 out length");
    out.fill(0.0);
    sum_axis0_assign(a, n, d, out);
}

/// Accumulating variant of [`sum_axis0_into`]: `out[j] += Σᵢ a[i, j]`
/// without zeroing `out` first — the backward sweep fuses row-broadcast
/// gradient reduction into the existing accumulator this way.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the given dimensions.
pub fn sum_axis0_assign(a: &[f32], n: usize, d: usize, out: &mut [f32]) {
    assert_eq!(a.len(), n * d, "sum_axis0 input length");
    assert_eq!(out.len(), d, "sum_axis0 out length");
    for row in a.chunks_exact(d) {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
}

/// `out[i] = f(src[i])` — the elementwise map kernel.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn map_into(src: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32) {
    assert_eq!(src.len(), out.len(), "map length");
    for (o, &s) in out.iter_mut().zip(src) {
        *o = f(s);
    }
}

/// `dst[i] = f(dst[i])` — elementwise map in place.
pub fn map_assign(dst: &mut [f32], f: impl Fn(f32) -> f32) {
    for d in dst.iter_mut() {
        *d = f(*d);
    }
}

/// `out[i] = f(a[i], b[i])` — the elementwise zip kernel.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn zip_into(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32) {
    assert_eq!(a.len(), b.len(), "zip lhs/rhs length");
    assert_eq!(a.len(), out.len(), "zip out length");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(x, y);
    }
}

/// `dst[i] = f(dst[i], src[i])` — elementwise zip in place.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn zip_assign(dst: &mut [f32], src: &[f32], f: impl Fn(f32, f32) -> f32) {
    assert_eq!(dst.len(), src.len(), "zip_assign length");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f(*d, s);
    }
}

/// Temperature-aware, max-shifted log-sum-exp of one row:
/// `t * ln(Σⱼ exp((x[j] - max) / t)) + max`.
///
/// This is the *single* numerically-stable LSE in the workspace — both
/// `nazar_nn::loss` (log-softmax / entropy, `t = 1.0`) and the
/// energy-score detector (`t = temperature`) route through it, so the two
/// crates can never drift apart numerically again. At `t = 1.0` the
/// division and multiplication by `t` are bitwise no-ops, which keeps the
/// historical log-softmax results (and the golden traces pinned on them)
/// unchanged.
///
/// Edge cases follow IEEE semantics: an empty row yields `-inf`; a row
/// containing NaN yields NaN (callers that need sanitized scores clamp
/// afterwards, as the detectors do).
pub fn log_sum_exp(row: &[f32], t: f32) -> f32 {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // All -inf (or empty): Σ exp = 0, LSE = -inf. Skip the sum so
        // `(-inf - -inf)` cannot manufacture NaN.
        return f32::NEG_INFINITY;
    }
    row.iter().map(|&v| ((v - max) / t).exp()).sum::<f32>().ln() * t + max
}

/// In-place softmax of one row: max-shift, exponentiate, normalize.
///
/// The max scan and the exp/sum reduction are scalar in every tier (vector
/// max intrinsics disagree with `f32::max` on NaN, and the sum must keep
/// `j = 0..d` order); the subtract and divide stages vectorize under any
/// vector tier and are lane-independent, so the result is bitwise
/// identical across all tiers.
pub fn softmax_row_tier(row: &mut [f32], tier: SimdTier) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !simd::sub_scalar(tier, row, max) {
        for v in row.iter_mut() {
            *v -= max;
        }
    }
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = v.exp();
        sum += *v;
    }
    if !simd::div_scalar(tier, row, sum) {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Fused batch-norm inference kernel over row-major `x: [n, d]`:
/// `out[i, j] = (x[i, j] - mean[j]) / std[j] * gamma[j] + beta[j]`.
///
/// Reproduces the eval-mode arithmetic of `nazar_nn`'s `BatchNorm1d`
/// (subtract, divide by `sqrt(var + eps)` precomputed by the caller,
/// scale, shift — in exactly that order) without the autograd tape; the
/// quantized device forward uses it between integer matmuls. Every stage
/// is lane-independent, so scalar and vector tiers agree bitwise.
///
/// # Panics
///
/// Panics if slice lengths disagree with `d` or each other.
#[allow(clippy::too_many_arguments)]
pub fn bn_eval_into(
    x: &[f32],
    d: usize,
    mean: &[f32],
    std: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    tier: SimdTier,
) {
    assert!(d > 0 && x.len().is_multiple_of(d), "bn_eval input length");
    assert_eq!(x.len(), out.len(), "bn_eval out length");
    assert_eq!(mean.len(), d, "bn_eval mean length");
    assert_eq!(std.len(), d, "bn_eval std length");
    assert_eq!(gamma.len(), d, "bn_eval gamma length");
    assert_eq!(beta.len(), d, "bn_eval beta length");
    if simd::bn_eval_rows(tier, x, d, mean, std, gamma, beta, out) {
        return;
    }
    for (row, orow) in x.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
        for j in 0..d {
            orow[j] = (row[j] - mean[j]) / std[j] * gamma[j] + beta[j];
        }
    }
}

/// Quantized matrix product `out = a · b` for row-major `a: [n, k]` i8,
/// `b: [k, m]` i8, `out: [n, m]` i32.
///
/// Accumulation is exact integer arithmetic (`i8 × i8 → i32`; worst case
/// `k * 127²` stays far inside `i32` for every dimension this workspace
/// uses, asserted below), so the result is identical for *any* summation
/// order — the i8 inference path is deterministic at every thread width
/// by construction, with no ordering discipline needed.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions, or if
/// `k * 127 * 127` could overflow the `i32` accumulator.
pub fn matmul_i8_into(a: &[i8], b: &[i8], n: usize, k: usize, m: usize, out: &mut [i32]) {
    let threads = if n.saturating_mul(k).saturating_mul(m) >= PAR_MIN_MULADDS {
        num_threads()
    } else {
        1
    };
    matmul_i8_into_threads(a, b, n, k, m, out, threads);
}

/// [`matmul_i8_into`] with an explicit worker count (tests sweep widths
/// in-process to demonstrate the order-independence claim directly).
pub fn matmul_i8_into_threads(
    a: &[i8],
    b: &[i8],
    n: usize,
    k: usize,
    m: usize,
    out: &mut [i32],
    threads: usize,
) {
    assert_eq!(a.len(), n * k, "matmul_i8 lhs length");
    assert_eq!(b.len(), k * m, "matmul_i8 rhs length");
    assert_eq!(out.len(), n * m, "matmul_i8 out length");
    assert!(
        i32::try_from(k)
            .ok()
            .and_then(|k| k.checked_mul(127 * 127))
            .is_some(),
        "matmul_i8: k = {k} could overflow the i32 accumulator"
    );
    if n == 0 || m == 0 {
        return;
    }
    out.fill(0);
    if k == 0 {
        return;
    }
    par_row_bands(out, n, m, threads, |first_row, band| {
        for (r, out_row) in band.chunks_mut(m).enumerate() {
            let a_row = &a[(first_row + r) * k..(first_row + r + 1) * k];
            for (p, &ap) in a_row.iter().enumerate() {
                let ap = i32::from(ap);
                let b_row = &b[p * m..(p + 1) * m];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += ap * i32::from(bv);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook `i, p, j` product every matmul kernel must match.
    fn naive_matmul(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            for p in 0..k {
                let ap = a[i * k + p];
                for j in 0..m {
                    out[i * m + j] += ap * b[p * m + j];
                }
            }
        }
        out
    }

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) * scale)
            .collect()
    }

    #[test]
    fn matmul_matches_naive_bitwise_across_shapes() {
        let mut ws = Workspace::new();
        for &(n, k, m) in &[(1, 1, 1), (3, 5, 7), (8, 8, 8), (13, 9, 17), (2, 64, 31)] {
            let a = ramp(n * k, 0.25);
            let b = ramp(k * m, 0.5);
            let mut out = vec![f32::NAN; n * m];
            matmul_into(&a, &b, n, k, m, &mut out, &mut ws);
            assert_eq!(out, naive_matmul(&a, &b, n, k, m), "shape {n}x{k}x{m}");
        }
    }

    #[test]
    fn parallel_matmul_is_bitwise_deterministic() {
        let (n, k, m) = (37, 29, 41);
        let a = ramp(n * k, 0.125);
        let b = ramp(k * m, 0.25);
        let mut ws = Workspace::new();
        let mut single = vec![0.0f32; n * m];
        matmul_into_threads(&a, &b, n, k, m, &mut single, &mut ws, 1);
        for threads in [2, 3, 8] {
            let mut multi = vec![0.0f32; n * m];
            matmul_into_threads(&a, &b, n, k, m, &mut multi, &mut ws, threads);
            assert_eq!(single, multi, "threads {threads}");
        }
    }

    #[test]
    fn at_b_matches_transpose_then_matmul() {
        let (n, k, m) = (6, 4, 5);
        let a = ramp(n * k, 0.5);
        let g = ramp(n * m, 0.25);
        let mut out = vec![0.0f32; k * m];
        matmul_at_b_into(&a, &g, n, k, m, &mut out);
        // Reference: transpose a, then naive product.
        let mut at = vec![0.0f32; n * k];
        transpose_into(&a, n, k, &mut at);
        assert_eq!(out, naive_matmul(&at, &g, k, n, m));
    }

    #[test]
    fn a_bt_matches_matmul_then_transpose() {
        let (n, m, k) = (5, 7, 3);
        let g = ramp(n * m, 0.5);
        let b = ramp(k * m, 0.25);
        let mut out = vec![0.0f32; n * k];
        matmul_a_bt_into(&g, &b, n, m, k, &mut out);
        let mut bt = vec![0.0f32; k * m];
        transpose_into(&b, k, m, &mut bt);
        assert_eq!(out, naive_matmul(&g, &bt, n, m, k));
    }

    #[test]
    fn transpose_round_trips_on_awkward_shapes() {
        for &(n, m) in &[(1, 1), (33, 31), (64, 64), (7, 100)] {
            let src = ramp(n * m, 1.0);
            let mut dst = vec![0.0f32; n * m];
            transpose_into(&src, n, m, &mut dst);
            let mut back = vec![0.0f32; n * m];
            transpose_into(&dst, m, n, &mut back);
            assert_eq!(src, back, "shape {n}x{m}");
        }
    }

    #[test]
    fn elementwise_kernels_behave() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [10.0f32, 20.0, 30.0];
        let mut out = [0.0f32; 3];
        add_into(&a, &b, &mut out);
        assert_eq!(out, [11.0, 22.0, 33.0]);
        add_assign(&mut out, &a);
        assert_eq!(out, [12.0, 24.0, 36.0]);
        axpy_into(0.5, &b, &mut out);
        assert_eq!(out, [17.0, 34.0, 51.0]);
        scale_assign(&mut out, 2.0);
        assert_eq!(out, [34.0, 68.0, 102.0]);
        map_into(&a, &mut out, |x| x * x);
        assert_eq!(out, [1.0, 4.0, 9.0]);
        map_assign(&mut out, |x| x + 1.0);
        assert_eq!(out, [2.0, 5.0, 10.0]);
        zip_assign(&mut out, &a, |x, y| x - y);
        assert_eq!(out, [1.0, 3.0, 7.0]);
    }

    #[test]
    fn sum_axis0_matches_row_order_accumulation() {
        let a = ramp(6 * 5, 0.5);
        let mut out = vec![f32::NAN; 5];
        sum_axis0_into(&a, 6, 5, &mut out);
        let mut expect = vec![0.0f32; 5];
        for i in 0..6 {
            for j in 0..5 {
                expect[j] += a[i * 5 + j];
            }
        }
        assert_eq!(out, expect);
    }

    #[test]
    fn degenerate_matmul_shapes() {
        let mut ws = Workspace::new();
        // k == 0: the product is all zeros.
        let mut out = vec![7.0f32; 6];
        matmul_into(&[], &[], 2, 0, 3, &mut out, &mut ws);
        assert!(out.iter().all(|&v| v == 0.0));
        // n == 0: nothing to write.
        let mut empty: Vec<f32> = Vec::new();
        matmul_into(&[], &[1.0, 2.0], 0, 1, 2, &mut empty, &mut ws);
    }
}
