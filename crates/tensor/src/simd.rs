//! Runtime-dispatched SIMD inner kernels (`std::arch`, AVX-512).
//!
//! This is the only module in the crate allowed to use `unsafe` — every
//! other module is `#![deny(unsafe_code)]`-clean, and every unsafe block
//! here is a `std::arch` intrinsic call guarded by runtime feature
//! detection. The scalar kernels in [`crate::kernels`] remain the
//! always-available oracle: the equivalence suite asserts the exact tier
//! bitwise against them and the fast tier within an ULP envelope.
//!
//! # Tiers
//!
//! Dispatch is a three-way [`SimdTier`], chosen once per process from the
//! `NAZAR_TENSOR_SIMD` environment variable (see [`env_tier`]):
//!
//! * **`off`** — scalar kernels only. Always available; the oracle.
//! * **`exact`** (default when AVX-512F is present) — vectorized kernels
//!   that are *bitwise identical* to the scalar path. The matmul uses
//!   separate multiply + add intrinsics (never FMA, which contracts the
//!   rounding step) and accumulates each output lane in the same
//!   `p = 0..k` order as the textbook loop, so the workspace-wide
//!   bitwise-determinism contract (golden traces, 1-vs-N-thread diffs)
//!   holds unchanged.
//! * **`fast`** (opt-in) — FMA-contracted, 8-row register blocks. Not
//!   bitwise: each fused multiply-add skips one rounding, so results
//!   drift from the oracle by an accumulation-length-scaled ULP bound.
//!   Golden-trace byte-diff jobs must not enable this tier.
//!
//! Elementwise lane-independent kernels (the batch-norm eval fuse, the
//! softmax subtract/divide stages) are bitwise in *both* vector tiers —
//! each lane performs exactly the scalar op sequence — so they dispatch
//! whenever any vector tier is active.
//!
//! On non-x86_64 targets, or when AVX-512F is absent, every entry point
//! reports "not handled" and callers fall through to the scalar path.

use std::sync::OnceLock;

/// Vector-width (f32 lanes) of one AVX-512 register.
#[cfg(target_arch = "x86_64")]
const LANES: usize = 16;

/// Column-panel width of the SIMD matmul: two AVX-512 registers.
#[cfg(target_arch = "x86_64")]
const PANEL: usize = 32;

/// SIMD dispatch tier, selected by `NAZAR_TENSOR_SIMD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdTier {
    /// Scalar kernels only (the oracle path).
    Off,
    /// Vectorized, bitwise identical to scalar (mul + add, no FMA).
    #[default]
    Exact,
    /// Vectorized with FMA contraction — fastest, ULP-bounded vs scalar.
    Fast,
}

impl SimdTier {
    /// Parses a `NAZAR_TENSOR_SIMD` value. Unknown strings map to `None`.
    pub fn parse(s: &str) -> Option<SimdTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "scalar" | "none" => Some(SimdTier::Off),
            "exact" | "1" | "on" => Some(SimdTier::Exact),
            "fast" | "fma" => Some(SimdTier::Fast),
            _ => None,
        }
    }

    /// Canonical knob spelling for this tier.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdTier::Off => "off",
            SimdTier::Exact => "exact",
            SimdTier::Fast => "fast",
        }
    }

    /// Whether this tier uses vector kernels at all.
    pub fn is_vector(self) -> bool {
        self != SimdTier::Off
    }
}

/// Whether the running CPU supports the AVX-512F kernels in this module.
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Clamps a requested tier to what the CPU supports.
pub fn effective(requested: SimdTier) -> SimdTier {
    if requested.is_vector() && !available() {
        SimdTier::Off
    } else {
        requested
    }
}

/// Process-wide tier from `NAZAR_TENSOR_SIMD`, read once and latched.
///
/// Unset or unrecognized values default to [`SimdTier::Exact`]; the result
/// is clamped by [`effective`], so hosts without AVX-512F silently run the
/// scalar path. Tests that need to sweep tiers in one process use the
/// explicit `*_tier` kernel entry points instead of this knob.
pub fn env_tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let requested = std::env::var("NAZAR_TENSOR_SIMD")
            .ok()
            .and_then(|s| SimdTier::parse(&s))
            .unwrap_or(SimdTier::Exact);
        effective(requested)
    })
}

/// Vectorized `out = a · b` over 32-column panels; returns `false` when the
/// tier/CPU cannot handle the shape, in which case the caller must run the
/// scalar kernel instead.
///
/// `packed` must hold the full-width column panels of `b` (panel for
/// columns `[j0, j0+32)` stored p-major at offset `j0 * k`, exactly the
/// packing `crate::kernels` produces with a 32-wide tile); trailing
/// columns (`m % 32`) are read straight from `b` by a scalar loop in the
/// same `p = 0..k` order as the oracle.
#[allow(clippy::too_many_arguments, unused_variables)]
pub fn matmul_band(
    tier: SimdTier,
    a: &[f32],
    b: &[f32],
    packed: &[f32],
    k: usize,
    m: usize,
    first_row: usize,
    band: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if !effective(tier).is_vector() {
            return false;
        }
        // Safety: `effective` verified avx512f above.
        unsafe {
            match tier {
                SimdTier::Fast => x86::matmul_band_fast(a, b, packed, k, m, first_row, band),
                _ => x86::matmul_band_exact(a, b, packed, k, m, first_row, band),
            }
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Vectorized batch-norm eval fuse:
/// `out[i, j] = (x[i, j] - mean[j]) / std[j] * gamma[j] + beta[j]`.
///
/// Lane-independent (sub/div/mul/add per element, no reduction), so the
/// result is bitwise identical to the scalar kernel in both vector tiers.
/// Returns `false` when vector kernels are unavailable.
#[allow(clippy::too_many_arguments, unused_variables)]
pub fn bn_eval_rows(
    tier: SimdTier,
    x: &[f32],
    d: usize,
    mean: &[f32],
    std: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if !effective(tier).is_vector() {
            return false;
        }
        // Safety: `effective` verified avx512f above.
        unsafe { x86::bn_eval_rows(x, d, mean, std, gamma, beta, out) }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Vectorized elementwise subtract-scalar (`row[j] -= sub`) — the max-shift
/// stage of the softmax kernel (the max scan itself stays scalar: vector
/// max intrinsics disagree with `f32::max` on NaN propagation). Bitwise
/// identical to the scalar loop in both vector tiers. Returns `false` when
/// unavailable.
#[allow(unused_variables)]
pub fn sub_scalar(tier: SimdTier, row: &mut [f32], sub: f32) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if !effective(tier).is_vector() {
            return false;
        }
        // Safety: `effective` verified avx512f above.
        unsafe { x86::sub_scalar(row, sub) }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Vectorized elementwise divide-by-scalar (`row[j] /= div`), the closing
/// stage of the softmax kernel. Bitwise vs the scalar loop (IEEE division
/// per lane). Returns `false` when unavailable.
#[allow(unused_variables)]
pub fn div_scalar(tier: SimdTier, row: &mut [f32], div: f32) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if !effective(tier).is_vector() {
            return false;
        }
        // Safety: `effective` verified avx512f above.
        unsafe { x86::div_scalar(row, div) }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{LANES, PANEL};
    use std::arch::x86_64::*;

    /// Exact-tier matmul over one row band: mul + add (no contraction),
    /// per-lane accumulation in `p = 0..k` order — bitwise identical to
    /// the scalar oracle. 4-row register blocks over 32-column panels.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F is available and that `a`/`b`/`packed`
    /// cover the dimensions implied by `k`, `m`, `first_row`, and `band`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul_band_exact(
        a: &[f32],
        b: &[f32],
        packed: &[f32],
        k: usize,
        m: usize,
        first_row: usize,
        band: &mut [f32],
    ) {
        let band_rows = band.len() / m;
        let full = m - m % PANEL;
        let mut r = 0;
        while r + 4 <= band_rows {
            let i = first_row + r;
            let mut j0 = 0;
            while j0 < full {
                let panel = &packed[j0 * k..j0 * k + PANEL * k];
                let mut acc = [_mm512_setzero_ps(); 8];
                for p in 0..k {
                    let b0 = _mm512_loadu_ps(panel.as_ptr().add(p * PANEL));
                    let b1 = _mm512_loadu_ps(panel.as_ptr().add(p * PANEL + LANES));
                    for q in 0..4 {
                        let av = _mm512_set1_ps(*a.get_unchecked((i + q) * k + p));
                        acc[2 * q] = _mm512_add_ps(acc[2 * q], _mm512_mul_ps(av, b0));
                        acc[2 * q + 1] = _mm512_add_ps(acc[2 * q + 1], _mm512_mul_ps(av, b1));
                    }
                }
                for q in 0..4 {
                    let dst = band.as_mut_ptr().add((r + q) * m + j0);
                    _mm512_storeu_ps(dst, acc[2 * q]);
                    _mm512_storeu_ps(dst.add(LANES), acc[2 * q + 1]);
                }
                j0 += PANEL;
            }
            if full < m {
                scalar_cols(a, b, k, m, i, full, &mut band[r * m..(r + 4) * m]);
            }
            r += 4;
        }
        // Remaining rows: scalar, same p-order (bitwise-safe by construction).
        for rr in r..band_rows {
            let i = first_row + rr;
            scalar_cols(a, b, k, m, i, 0, &mut band[rr * m..(rr + 1) * m]);
        }
    }

    /// Fast-tier matmul over one row band: FMA contraction, 8-row blocks.
    /// Not bitwise vs scalar — each fused multiply-add skips a rounding.
    ///
    /// # Safety
    ///
    /// Same contract as [`matmul_band_exact`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul_band_fast(
        a: &[f32],
        b: &[f32],
        packed: &[f32],
        k: usize,
        m: usize,
        first_row: usize,
        band: &mut [f32],
    ) {
        let band_rows = band.len() / m;
        let full = m - m % PANEL;
        let mut r = 0;
        while r + 8 <= band_rows {
            let i = first_row + r;
            let mut j0 = 0;
            while j0 < full {
                let panel = &packed[j0 * k..j0 * k + PANEL * k];
                let mut acc = [_mm512_setzero_ps(); 16];
                for p in 0..k {
                    let b0 = _mm512_loadu_ps(panel.as_ptr().add(p * PANEL));
                    let b1 = _mm512_loadu_ps(panel.as_ptr().add(p * PANEL + LANES));
                    for q in 0..8 {
                        let av = _mm512_set1_ps(*a.get_unchecked((i + q) * k + p));
                        acc[2 * q] = _mm512_fmadd_ps(av, b0, acc[2 * q]);
                        acc[2 * q + 1] = _mm512_fmadd_ps(av, b1, acc[2 * q + 1]);
                    }
                }
                for q in 0..8 {
                    let dst = band.as_mut_ptr().add((r + q) * m + j0);
                    _mm512_storeu_ps(dst, acc[2 * q]);
                    _mm512_storeu_ps(dst.add(LANES), acc[2 * q + 1]);
                }
                j0 += PANEL;
            }
            if full < m {
                scalar_cols(a, b, k, m, i, full, &mut band[r * m..(r + 8) * m]);
            }
            r += 8;
        }
        // Remaining rows reuse the exact 4-row kernel, then scalar.
        if band_rows > r {
            matmul_band_exact(a, b, packed, k, m, first_row + r, &mut band[r * m..]);
        }
    }

    /// Scalar column tail for rows `[i, i + rows)`, columns `[j0, m)`,
    /// reading `b` directly (stride `m`) in oracle `p = 0..k` order.
    fn scalar_cols(
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        i: usize,
        j0: usize,
        out_rows: &mut [f32],
    ) {
        for (q, out_row) in out_rows.chunks_mut(m).enumerate() {
            let a_row = &a[(i + q) * k..(i + q + 1) * k];
            let tile = &mut out_row[j0..];
            tile.fill(0.0);
            for (p, &ap) in a_row.iter().enumerate() {
                let brow = &b[p * m + j0..p * m + m];
                for (o, &bv) in tile.iter_mut().zip(brow) {
                    *o += ap * bv;
                }
            }
        }
    }

    /// Fused batch-norm eval: per-lane `((x - mean) / std) * gamma + beta`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F is available; slice bounds are checked.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn bn_eval_rows(
        x: &[f32],
        d: usize,
        mean: &[f32],
        std: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
    ) {
        let full = d - d % LANES;
        for (row, orow) in x.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
            let mut j = 0;
            while j < full {
                let xv = _mm512_loadu_ps(row.as_ptr().add(j));
                let mv = _mm512_loadu_ps(mean.as_ptr().add(j));
                let sv = _mm512_loadu_ps(std.as_ptr().add(j));
                let gv = _mm512_loadu_ps(gamma.as_ptr().add(j));
                let bv = _mm512_loadu_ps(beta.as_ptr().add(j));
                let norm = _mm512_div_ps(_mm512_sub_ps(xv, mv), sv);
                let y = _mm512_add_ps(_mm512_mul_ps(norm, gv), bv);
                _mm512_storeu_ps(orow.as_mut_ptr().add(j), y);
                j += LANES;
            }
            for jj in full..d {
                orow[jj] = (row[jj] - mean[jj]) / std[jj] * gamma[jj] + beta[jj];
            }
        }
    }

    /// `row[j] -= c` across AVX-512 lanes (bitwise: lane-independent sub).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F is available.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sub_scalar(row: &mut [f32], c: f32) {
        let full = row.len() - row.len() % LANES;
        let cv = _mm512_set1_ps(c);
        let mut j = 0;
        while j < full {
            let v = _mm512_loadu_ps(row.as_ptr().add(j));
            _mm512_storeu_ps(row.as_mut_ptr().add(j), _mm512_sub_ps(v, cv));
            j += LANES;
        }
        for v in &mut row[full..] {
            *v -= c;
        }
    }

    /// `row[j] /= c` across AVX-512 lanes (bitwise: lane-independent div).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F is available.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn div_scalar(row: &mut [f32], c: f32) {
        let full = row.len() - row.len() % LANES;
        let cv = _mm512_set1_ps(c);
        let mut j = 0;
        while j < full {
            let v = _mm512_loadu_ps(row.as_ptr().add(j));
            _mm512_storeu_ps(row.as_mut_ptr().add(j), _mm512_div_ps(v, cv));
            j += LANES;
        }
        for v in &mut row[full..] {
            *v /= c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_parsing_covers_knob_spellings() {
        assert_eq!(SimdTier::parse("off"), Some(SimdTier::Off));
        assert_eq!(SimdTier::parse("0"), Some(SimdTier::Off));
        assert_eq!(SimdTier::parse("EXACT"), Some(SimdTier::Exact));
        assert_eq!(SimdTier::parse("fast"), Some(SimdTier::Fast));
        assert_eq!(SimdTier::parse("fma"), Some(SimdTier::Fast));
        assert_eq!(SimdTier::parse("banana"), None);
        assert_eq!(SimdTier::default(), SimdTier::Exact);
    }

    #[test]
    fn effective_clamps_to_hardware() {
        assert_eq!(effective(SimdTier::Off), SimdTier::Off);
        if !available() {
            assert_eq!(effective(SimdTier::Exact), SimdTier::Off);
            assert_eq!(effective(SimdTier::Fast), SimdTier::Off);
        } else {
            assert_eq!(effective(SimdTier::Fast), SimdTier::Fast);
        }
    }
}
