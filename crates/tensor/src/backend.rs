//! Storage backends: element types, allocators, and the [`Buffer`]
//! abstraction that makes [`crate::Tensor`] generic over both.
//!
//! The design follows the proven `Tensor<T, A: Backend>` shape: a tensor is
//! a [`Buffer`] (element storage owned by a backend) plus a shape. The
//! [`Backend`] trait owns allocation through a generic associated storage
//! type, so adding a new device/allocator is one trait impl — the kernels
//! and the f32 math API are untouched. The only backend in-tree is [`Cpu`]
//! (storage = `Vec<T>`); the trait boundary is what the ROADMAP's
//! "backend-generic tensor layer" item asks for, and what an mmap- or
//! arena-backed storage would plug into.
//!
//! Element types are deliberately closed over the small set the Nazar
//! pipeline needs: `f32` (training/adaptation), `i8` (quantized device
//! inference), and `i32` (exact quantized accumulators).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A scalar element a [`crate::Tensor`] can store.
///
/// Sealed in spirit: the quantized inference path relies on the exact set
/// `{f32, i8, i32}` and their conversion semantics, so new impls should be
/// added deliberately, together with kernel support.
pub trait Element:
    Copy + Clone + fmt::Debug + Default + PartialEq + PartialOrd + Send + Sync + 'static
{
    /// The additive identity for this element type.
    const ZERO: Self;
    /// The multiplicative identity for this element type.
    const ONE: Self;
    /// Short dtype name (diagnostics; mirrors NumPy naming).
    const DTYPE: &'static str;
}

impl Element for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const DTYPE: &'static str = "f32";
}

impl Element for i8 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const DTYPE: &'static str = "i8";
}

impl Element for i32 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const DTYPE: &'static str = "i32";
}

/// An allocator/device a [`Buffer`] lives on.
///
/// A backend maps every [`Element`] type to a concrete storage type via a
/// generic associated type, and knows how to move data in and out of plain
/// `Vec`s. All storage must be addressable as a contiguous host slice —
/// the kernels operate on `&[T]`/`&mut [T]` and are backend-agnostic.
pub trait Backend: fmt::Debug + Copy + Clone + Default + PartialEq + Send + Sync + 'static {
    /// Human-readable backend name (diagnostics).
    const NAME: &'static str;

    /// The storage this backend allocates for elements of type `T`.
    type Storage<T: Element>: AsRef<[T]> + AsMut<[T]> + Clone + fmt::Debug + PartialEq + Send + Sync;

    /// Wraps an existing host vector without copying (for `Cpu`).
    fn from_vec<T: Element>(data: Vec<T>) -> Self::Storage<T>;

    /// Moves storage back into a host vector.
    fn into_vec<T: Element>(storage: Self::Storage<T>) -> Vec<T>;

    /// Allocates `len` elements, all set to `fill`.
    fn alloc<T: Element>(len: usize, fill: T) -> Self::Storage<T> {
        Self::from_vec(vec![fill; len])
    }
}

/// The default host backend: storage is a plain `Vec<T>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cpu;

impl Backend for Cpu {
    const NAME: &'static str = "cpu";
    type Storage<T: Element> = Vec<T>;

    fn from_vec<T: Element>(data: Vec<T>) -> Vec<T> {
        data
    }

    fn into_vec<T: Element>(storage: Vec<T>) -> Vec<T> {
        storage
    }
}

/// Element storage owned by a backend — the buffer under every
/// [`crate::Tensor`].
///
/// Dereferences to `[T]`, so callers (and all the in-crate kernels) treat
/// it exactly like a slice; the backend only governs allocation and
/// ownership. `Buffer<T, Cpu>` round-trips to `Vec<T>` at zero cost.
pub struct Buffer<T: Element, A: Backend = Cpu> {
    storage: A::Storage<T>,
}

impl<T: Element, A: Backend> Buffer<T, A> {
    /// Wraps a host vector in backend storage.
    pub fn from_vec(data: Vec<T>) -> Self {
        Buffer {
            storage: A::from_vec(data),
        }
    }

    /// Allocates `len` elements, all set to `fill`.
    pub fn filled(len: usize, fill: T) -> Self {
        Buffer {
            storage: A::alloc(len, fill),
        }
    }

    /// Allocates `len` zeroed elements.
    pub fn zeroed(len: usize) -> Self {
        Self::filled(len, T::ZERO)
    }

    /// Moves the buffer back into a host vector.
    pub fn into_vec(self) -> Vec<T> {
        A::into_vec(self.storage)
    }

    /// The contents as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        self.storage.as_ref()
    }

    /// The contents as a mutable contiguous slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.storage.as_mut()
    }
}

impl<T: Element, A: Backend> Deref for Buffer<T, A> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Element, A: Backend> DerefMut for Buffer<T, A> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Element, A: Backend> Clone for Buffer<T, A> {
    fn clone(&self) -> Self {
        Buffer {
            storage: self.storage.clone(),
        }
    }
}

impl<T: Element, A: Backend> fmt::Debug for Buffer<T, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Buffer")
            .field("backend", &A::NAME)
            .field("dtype", &T::DTYPE)
            .field("data", &self.storage)
            .finish()
    }
}

impl<T: Element, A: Backend> PartialEq for Buffer<T, A> {
    fn eq(&self, other: &Self) -> bool {
        self.storage == other.storage
    }
}

impl<T: Element, A: Backend> From<Vec<T>> for Buffer<T, A> {
    fn from(data: Vec<T>) -> Self {
        Buffer::from_vec(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_buffer_round_trips_without_copying() {
        let v = vec![1.0f32, 2.0, 3.0];
        let ptr = v.as_ptr();
        let buf: Buffer<f32> = Buffer::from_vec(v);
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0]);
        let back = buf.into_vec();
        assert_eq!(back.as_ptr(), ptr, "cpu round trip must not copy");
    }

    #[test]
    fn buffers_deref_like_slices() {
        let mut buf: Buffer<i8> = Buffer::zeroed(4);
        buf[2] = 7;
        assert_eq!(buf.iter().copied().sum::<i8>(), 7);
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn element_constants_cover_the_quant_set() {
        assert_eq!(f32::ZERO, 0.0);
        assert_eq!(i8::ONE, 1);
        assert_eq!(i32::DTYPE, "i32");
        assert_eq!(Cpu::NAME, "cpu");
    }
}
