//! Dense `f32` tensors with reverse-mode automatic differentiation.
//!
//! This crate is the numeric substrate of the Nazar reproduction. The paper
//! trains and adapts ResNet classifiers with PyTorch on a GPU; everything
//! Nazar itself measures (softmax confidence, prediction entropy, gradients
//! of the entropy objective with respect to batch-normalization parameters)
//! is reproduced here on top of a small, fully self-contained tensor library:
//!
//! * [`Tensor`] — an n-dimensional dense `f32` array with shape/stride
//!   bookkeeping, broadcasting helpers, matrix multiplication and reductions.
//! * [`Tape`] / [`Var`] — a classic reverse-mode autodiff tape. Operations on
//!   [`Var`]s record nodes on the tape; [`Var::backward`] walks the tape in
//!   reverse and accumulates gradients for every node (including leaves, so
//!   input-gradient methods such as ODIN work).
//! * [`kernels`] — out-parameter slice kernels (tiled/packed-B matmul,
//!   blocked transpose, elementwise map/zip, axpy) that the `Tensor`
//!   methods and the backward sweep are thin wrappers over.
//! * [`Workspace`] — a recycling buffer pool feeding the kernels' scratch
//!   needs, with a thread-local instance behind the allocating API.
//! * [`parallel`] — scoped-thread helpers (`std::thread::scope` only; the
//!   `NAZAR_NUM_THREADS` environment variable caps the worker count,
//!   defaulting to the machine's available parallelism).
//!
//! # Example
//!
//! ```
//! use nazar_tensor::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap());
//! let y = x.relu().sum_all();
//! let grads = y.backward();
//! assert_eq!(grads.get(&x).unwrap().data(), &[1.0, 1.0, 1.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autograd;
mod error;
pub mod kernels;
mod ops;
pub mod parallel;
mod shape;
mod tensor;
mod workspace;

pub use autograd::{Gradients, Tape, Var};
pub use error::{Result, TensorError};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;
