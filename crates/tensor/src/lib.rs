//! Dense `f32` tensors with reverse-mode automatic differentiation.
//!
//! This crate is the numeric substrate of the Nazar reproduction. The paper
//! trains and adapts ResNet classifiers with PyTorch on a GPU; everything
//! Nazar itself measures (softmax confidence, prediction entropy, gradients
//! of the entropy objective with respect to batch-normalization parameters)
//! is reproduced here on top of a small, fully self-contained tensor library:
//!
//! * [`Tensor`] — an n-dimensional dense array, generic over element type
//!   and storage backend (`Tensor<T = f32, A = Cpu>` over a [`Buffer`]),
//!   with shape/stride bookkeeping, broadcasting helpers, matrix
//!   multiplication and reductions. The plain-`Tensor` (f32 on [`Cpu`]) API
//!   is unchanged; `Tensor<i8>`/`Tensor<i32>` carry the quantized device
//!   inference path.
//! * [`simd`] — runtime-dispatched AVX-512 inner kernels ([`SimdTier`];
//!   `NAZAR_TENSOR_SIMD` selects `off`/`exact`/`fast`), with the scalar
//!   kernels as the always-available bitwise oracle.
//! * [`Tape`] / [`Var`] — a classic reverse-mode autodiff tape. Operations on
//!   [`Var`]s record nodes on the tape; [`Var::backward`] walks the tape in
//!   reverse and accumulates gradients for every node (including leaves, so
//!   input-gradient methods such as ODIN work).
//! * [`kernels`] — out-parameter slice kernels (tiled/packed-B matmul,
//!   blocked transpose, elementwise map/zip, axpy) that the `Tensor`
//!   methods and the backward sweep are thin wrappers over.
//! * [`Workspace`] — a recycling buffer pool feeding the kernels' scratch
//!   needs, with a thread-local instance behind the allocating API.
//! * [`parallel`] — scoped-thread helpers (`std::thread::scope` only; the
//!   `NAZAR_NUM_THREADS` environment variable caps the worker count,
//!   defaulting to the machine's available parallelism).
//!
//! # Example
//!
//! ```
//! use nazar_tensor::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap());
//! let y = x.relu().sum_all();
//! let grads = y.backward();
//! assert_eq!(grads.get(&x).unwrap().data(), &[1.0, 1.0, 1.0]);
//! ```

// `unsafe` is denied crate-wide; the only exemption is the `simd` module,
// which needs `std::arch` intrinsics behind runtime feature detection and
// carries a local `#[allow(unsafe_code)]` plus a safety contract per kernel.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod autograd;
mod backend;
mod error;
pub mod kernels;
mod ops;
pub mod parallel;
mod shape;
#[allow(unsafe_code)]
pub mod simd;
mod tensor;
mod workspace;

pub use autograd::{Gradients, Tape, Var};
pub use backend::{Backend, Buffer, Cpu, Element};
pub use error::{Result, TensorError};
pub use kernels::log_sum_exp;
pub use shape::Shape;
pub use simd::SimdTier;
pub use tensor::Tensor;
pub use workspace::{pooled_bytes_total, Workspace};
