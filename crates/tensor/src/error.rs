//! Error type shared by all fallible tensor operations.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors raised by tensor construction and tensor algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The flat buffer length does not match the product of the dimensions.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The operation requires a tensor of a different rank.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// A tensor that must be non-empty was empty.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer of length {actual} does not fill shape of {expected} elements"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(
                    f,
                    "index {index} out of bounds for dimension of size {bound}"
                )
            }
            TensorError::Empty { op } => write!(f, "{op}: tensor must be non-empty"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                op: "add",
                lhs: vec![2],
                rhs: vec![3],
            },
            TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: 1,
            },
            TensorError::IndexOutOfBounds { index: 9, bound: 3 },
            TensorError::Empty { op: "mean" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with(char::is_alphabetic));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
