//! Refcounted shared-version arena for million-device fleets.
//!
//! [`crate::ModelPool`] stores a payload clone per device, which is exactly
//! right for the on-device view (each phone owns its bytes) and exactly
//! wrong for simulating a million of them in one process: a broadcast
//! deployment would clone one BN patch a million times. [`VersionArena`]
//! is the host-side fix — every deployed version's `(VersionMeta, payload)`
//! is interned **once**, and device pools hold `u32` references with
//! explicit refcounts. A slot is freed when the last referencing pool
//! evicts it, so long-running fleets do not leak evicted versions.
//!
//! Slot ids are reused (free-list), so holders must balance every
//! [`VersionArena::acquire`] with one [`VersionArena::release`]; the
//! fleet-state differential proptests pin that the arena-backed pools
//! stay byte-equivalent to per-device [`crate::ModelPool`]s.

use crate::VersionMeta;
use nazar_obs::LazyGauge;

static ARENA_VERSIONS: LazyGauge = LazyGauge::new(
    "nazar_registry_arena_versions",
    "Live shared model versions in the fleet arena",
    &[],
);

/// One interned version: metadata, payload, and the number of device pools
/// referencing it.
#[derive(Debug, Clone)]
struct ArenaSlot<P> {
    meta: VersionMeta,
    payload: P,
    refs: u64,
}

/// A refcounted store of deployed model versions, shared by every simulated
/// device (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct VersionArena<P> {
    slots: Vec<Option<ArenaSlot<P>>>,
    free: Vec<u32>,
    live: usize,
}

impl<P> VersionArena<P> {
    /// An empty arena.
    pub fn new() -> Self {
        VersionArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (referenced or not-yet-released) versions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the arena holds no live versions.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Interns a version with an initial refcount of zero and returns its
    /// id. Callers [`VersionArena::acquire`] it once per holding pool; a
    /// version released back to zero references is freed and its id reused.
    pub fn insert(&mut self, meta: VersionMeta, payload: P) -> u32 {
        let slot = ArenaSlot {
            meta,
            payload,
            refs: 0,
        };
        self.live += 1;
        ARENA_VERSIONS.set(self.live as f64);
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(slot);
                id
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Adds one reference to version `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live version (a use-after-free in the
    /// simulator, which must fail loudly).
    pub fn acquire(&mut self, id: u32) {
        self.slot_mut(id).refs += 1;
    }

    /// Drops one reference to version `id`, freeing the slot when the count
    /// reaches zero. A version still at zero references (inserted but never
    /// acquired) is freed immediately.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live version.
    pub fn release(&mut self, id: u32) {
        let slot = self.slot_mut(id);
        slot.refs = slot.refs.saturating_sub(1);
        if slot.refs == 0 {
            self.slots[id as usize] = None;
            self.free.push(id);
            self.live -= 1;
            ARENA_VERSIONS.set(self.live as f64);
        }
    }

    /// The metadata of live version `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live version.
    pub fn meta(&self, id: u32) -> &VersionMeta {
        &self.slot(id).meta
    }

    /// The payload of live version `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live version.
    pub fn payload(&self, id: u32) -> &P {
        &self.slot(id).payload
    }

    /// The reference count of live version `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live version.
    pub fn ref_count(&self, id: u32) -> u64 {
        self.slot(id).refs
    }

    fn slot(&self, id: u32) -> &ArenaSlot<P> {
        self.slots
            .get(id as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("arena version {id} is not live"))
    }

    fn slot_mut(&mut self, id: u32) -> &mut ArenaSlot<P> {
        self.slots
            .get_mut(id as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("arena version {id} is not live"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nazar_log::Attribute;

    fn meta(v: &str) -> VersionMeta {
        VersionMeta::new(vec![Attribute::new("weather", v)], 2.0)
    }

    #[test]
    fn insert_acquire_release_lifecycle() {
        let mut arena: VersionArena<&'static str> = VersionArena::new();
        let id = arena.insert(meta("snow"), "patch");
        assert_eq!(arena.len(), 1);
        arena.acquire(id);
        arena.acquire(id);
        assert_eq!(arena.ref_count(id), 2);
        assert_eq!(*arena.payload(id), "patch");
        arena.release(id);
        assert_eq!(arena.len(), 1, "one holder left");
        arena.release(id);
        assert!(arena.is_empty(), "last release frees the slot");
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut arena: VersionArena<u32> = VersionArena::new();
        let a = arena.insert(meta("snow"), 1);
        arena.acquire(a);
        arena.release(a);
        let b = arena.insert(meta("fog"), 2);
        assert_eq!(a, b, "free-list must recycle ids");
        assert_eq!(arena.meta(b).attrs[0].value, "fog");
        assert_eq!(*arena.payload(b), 2);
    }

    #[test]
    fn unacquired_version_frees_on_release() {
        let mut arena: VersionArena<u32> = VersionArena::new();
        let id = arena.insert(meta("rain"), 7);
        // A deploy that reached zero devices releases its insertion.
        arena.release(id);
        assert!(arena.is_empty());
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn stale_id_access_panics() {
        let mut arena: VersionArena<u32> = VersionArena::new();
        let id = arena.insert(meta("snow"), 1);
        arena.release(id);
        let _ = arena.payload(id);
    }

    #[test]
    fn shared_payload_is_stored_once() {
        // The point of the arena: a broadcast to N pools costs one payload.
        let mut arena: VersionArena<Vec<u8>> = VersionArena::new();
        let id = arena.insert(meta("snow"), vec![0u8; 1024]);
        for _ in 0..1_000 {
            arena.acquire(id);
        }
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.ref_count(id), 1_000);
    }
}
