//! Model version pool: consolidation and on-device version selection.
//!
//! By-cause adaptation produces one BN patch per root cause, and patches
//! accumulate over time. Nazar bounds the number of versions a device
//! stores (§3.4 "Consolidating model versions"):
//!
//! * a new version with the *exact same* attribute set replaces the old one;
//! * a new version whose coverage subsumes an older version's (its attribute
//!   set is a subset — e.g. `{snow}` arriving when `{snow, new-york}` is
//!   stored) evicts the older one, mirroring set reduction;
//! * beyond that, a least-recently-updated (LRU) policy evicts the oldest
//!   versions when the pool exceeds its capacity.
//!
//! For inference (§3.4 "Picking which version to use"), the device picks the
//! stored version with the most attributes matching the input's metadata,
//! breaking ties by risk-ratio rank and then by recency; a version with no
//! attributes (the continuously-adapted "clean" model) matches everything
//! and therefore acts as the fallback. Selection runs entirely on-device.
//!
//! # Example
//!
//! ```
//! use nazar_log::Attribute;
//! use nazar_registry::{ModelPool, VersionMeta};
//!
//! let mut pool: ModelPool<&'static str> = ModelPool::new(Some(3));
//! pool.deploy(
//!     VersionMeta::new(vec![Attribute::new("weather", "snow")], 3.0),
//!     "snow-patch",
//! );
//! let input = [Attribute::new("weather", "snow"), Attribute::new("location", "nyc")];
//! let chosen = pool.select(&input).unwrap();
//! assert_eq!(chosen.payload, "snow-patch");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;

pub use arena::VersionArena;

use nazar_log::Attribute;
use nazar_obs::LazyCounter;
use serde::{Deserialize, Serialize};

static DEPLOYS: LazyCounter = LazyCounter::new(
    "nazar_registry_deploys_total",
    "Model versions deployed into a pool",
    &[],
);
static EVICT_REPLACED: LazyCounter = LazyCounter::new(
    "nazar_registry_evictions_total",
    "Pool evictions by consolidation rule",
    &[("reason", "replaced")],
);
static EVICT_SUBSUMED: LazyCounter = LazyCounter::new(
    "nazar_registry_evictions_total",
    "Pool evictions by consolidation rule",
    &[("reason", "subsumed")],
);
static EVICT_LRU: LazyCounter = LazyCounter::new(
    "nazar_registry_evictions_total",
    "Pool evictions by consolidation rule",
    &[("reason", "lru")],
);
static SELECT_HITS: LazyCounter = LazyCounter::new(
    "nazar_registry_selects_total",
    "Version selections by outcome",
    &[("result", "hit")],
);
static SELECT_MISSES: LazyCounter = LazyCounter::new(
    "nazar_registry_selects_total",
    "Version selections by outcome",
    &[("result", "miss")],
);

/// Metadata of a model version: the root cause it was adapted to and the
/// cause's risk-ratio rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionMeta {
    /// Attribute set of the root cause (empty for the "clean" model).
    pub attrs: Vec<Attribute>,
    /// Risk ratio of the cause, used to break selection ties.
    pub risk_ratio: f64,
}

impl VersionMeta {
    /// Creates version metadata; the attribute set is canonicalized (sorted).
    pub fn new(mut attrs: Vec<Attribute>, risk_ratio: f64) -> Self {
        attrs.sort();
        VersionMeta { attrs, risk_ratio }
    }

    /// Metadata of the clean (matches-everything fallback) model.
    pub fn clean() -> Self {
        VersionMeta {
            attrs: Vec::new(),
            risk_ratio: 0.0,
        }
    }

    /// Whether every attribute of this version appears in `input_attrs`.
    pub fn matches(&self, input_attrs: &[Attribute]) -> bool {
        self.attrs.iter().all(|a| input_attrs.contains(a))
    }
}

/// One deployed model version: metadata plus an opaque payload (a BN patch
/// in the real system; generic so tests and simulations can store anything).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelVersion<P> {
    /// Unique id within the pool.
    pub id: u64,
    /// Cause metadata.
    pub meta: VersionMeta,
    /// The deployable artifact (e.g. [`nazar_nn::BnPatch`]).
    pub payload: P,
    /// Logical time of the last deployment/update of this version.
    pub updated_at: u64,
}

/// Outcome of a deployment: the new version's id and any evicted ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployOutcome {
    /// Id assigned to the deployed version.
    pub id: u64,
    /// Ids evicted to make room (same-cause replacement, subsumption, LRU).
    pub evicted: Vec<u64>,
}

/// The per-device (and cloud-side master) pool of model versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPool<P> {
    capacity: Option<usize>,
    versions: Vec<ModelVersion<P>>,
    clock: u64,
    next_id: u64,
}

impl<P> ModelPool<P> {
    /// Creates a pool; `capacity = None` disables the LRU bound (used by the
    /// Fig. 8c experiment, which counts uncapped version growth).
    pub fn new(capacity: Option<usize>) -> Self {
        ModelPool {
            capacity,
            versions: Vec::new(),
            clock: 0,
            next_id: 0,
        }
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// The stored versions, in insertion order.
    pub fn versions(&self) -> &[ModelVersion<P>] {
        &self.versions
    }

    /// Looks up a version by id.
    pub fn get(&self, id: u64) -> Option<&ModelVersion<P>> {
        self.versions.iter().find(|v| v.id == id)
    }

    /// Deploys a new version, applying the consolidation rules.
    pub fn deploy(&mut self, meta: VersionMeta, payload: P) -> DeployOutcome {
        self.clock += 1;
        let mut evicted = Vec::new();

        // Rule 1 & 2: evict same-cause versions and versions this cause
        // subsumes (their attribute set strictly contains the incoming one).
        self.versions.retain(|v| {
            let same = v.meta.attrs == meta.attrs;
            let subsumed = !meta.attrs.is_empty()
                && v.meta.attrs.len() > meta.attrs.len()
                && meta.attrs.iter().all(|a| v.meta.attrs.contains(a));
            if same || subsumed {
                if same {
                    EVICT_REPLACED.inc();
                } else {
                    EVICT_SUBSUMED.inc();
                }
                evicted.push(v.id);
                false
            } else {
                true
            }
        });

        let id = self.next_id;
        self.next_id += 1;
        self.versions.push(ModelVersion {
            id,
            meta,
            payload,
            updated_at: self.clock,
        });

        // Rule 3: LRU eviction beyond capacity.
        if let Some(cap) = self.capacity {
            while self.versions.len() > cap {
                let Some((idx, _)) = self
                    .versions
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, v)| v.updated_at)
                else {
                    break;
                };
                evicted.push(self.versions[idx].id);
                self.versions.remove(idx);
                EVICT_LRU.inc();
            }
        }
        DEPLOYS.inc();
        if !evicted.is_empty() {
            nazar_obs::event!(
                "pool_evict",
                version = id,
                evicted = evicted
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
                pool_size = self.versions.len(),
            );
        }
        DeployOutcome { id, evicted }
    }

    /// Picks the version to use for an input with the given metadata
    /// attributes, or `None` if the pool is empty or nothing matches
    /// (callers then fall back to the base model).
    pub fn select(&self, input_attrs: &[Attribute]) -> Option<&ModelVersion<P>> {
        let chosen = self
            .versions
            .iter()
            .filter(|v| v.meta.matches(input_attrs))
            .max_by(|a, b| {
                a.meta
                    .attrs
                    .len()
                    .cmp(&b.meta.attrs.len())
                    .then(a.meta.risk_ratio.total_cmp(&b.meta.risk_ratio))
                    .then(a.updated_at.cmp(&b.updated_at))
            });
        if chosen.is_some() {
            SELECT_HITS.inc();
        } else {
            SELECT_MISSES.inc();
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(k: &str, v: &str) -> Attribute {
        Attribute::new(k, v)
    }

    fn pool(cap: Option<usize>) -> ModelPool<u32> {
        ModelPool::new(cap)
    }

    #[test]
    fn same_cause_replaces_old_version() {
        let mut p = pool(Some(4));
        let first = p.deploy(VersionMeta::new(vec![attr("weather", "snow")], 3.0), 1);
        let second = p.deploy(VersionMeta::new(vec![attr("weather", "snow")], 3.5), 2);
        assert_eq!(second.evicted, vec![first.id]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.versions()[0].payload, 2);
    }

    #[test]
    fn coarser_cause_evicts_finer_versions() {
        let mut p = pool(Some(4));
        let fine = p.deploy(
            VersionMeta::new(vec![attr("weather", "snow"), attr("location", "nyc")], 2.0),
            1,
        );
        let other = p.deploy(VersionMeta::new(vec![attr("weather", "fog")], 2.0), 2);
        let coarse = p.deploy(VersionMeta::new(vec![attr("weather", "snow")], 3.0), 3);
        assert_eq!(coarse.evicted, vec![fine.id]);
        assert!(p.get(other.id).is_some());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn finer_cause_does_not_evict_coarser() {
        let mut p = pool(Some(4));
        p.deploy(VersionMeta::new(vec![attr("weather", "snow")], 3.0), 1);
        let fine = p.deploy(
            VersionMeta::new(vec![attr("weather", "snow"), attr("location", "nyc")], 2.0),
            2,
        );
        assert!(fine.evicted.is_empty());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_updated() {
        let mut p = pool(Some(2));
        let a = p.deploy(VersionMeta::new(vec![attr("weather", "snow")], 1.0), 1);
        let _b = p.deploy(VersionMeta::new(vec![attr("weather", "fog")], 1.0), 2);
        let c = p.deploy(VersionMeta::new(vec![attr("weather", "rain")], 1.0), 3);
        assert_eq!(c.evicted, vec![a.id]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn uncapped_pool_grows_freely() {
        let mut p = pool(None);
        for i in 0..10 {
            p.deploy(
                VersionMeta::new(vec![attr("device", &format!("d{i}"))], 1.0),
                i,
            );
        }
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn select_prefers_most_matching_attributes() {
        let mut p = pool(None);
        p.deploy(VersionMeta::new(vec![attr("weather", "rain")], 5.0), 1);
        p.deploy(
            VersionMeta::new(vec![attr("weather", "rain"), attr("location", "nyc")], 2.0),
            2,
        );
        let input = [
            attr("weather", "rain"),
            attr("location", "nyc"),
            attr("device", "d1"),
        ];
        // {rain, nyc} has more matching attributes than {rain}, despite the
        // lower risk ratio — exactly the paper's example.
        assert_eq!(p.select(&input).unwrap().payload, 2);
    }

    #[test]
    fn select_breaks_ties_by_risk_ratio() {
        let mut p = pool(None);
        p.deploy(VersionMeta::new(vec![attr("weather", "rain")], 1.5), 1);
        p.deploy(VersionMeta::new(vec![attr("location", "nyc")], 4.0), 2);
        let input = [attr("weather", "rain"), attr("location", "nyc")];
        assert_eq!(p.select(&input).unwrap().payload, 2);
    }

    #[test]
    fn clean_version_is_the_fallback() {
        let mut p = pool(None);
        p.deploy(VersionMeta::clean(), 0);
        p.deploy(VersionMeta::new(vec![attr("weather", "rain")], 3.0), 1);
        // Input matching no cause still matches the clean (empty) version.
        let chosen = p.select(&[attr("weather", "snow")]).unwrap();
        assert_eq!(chosen.payload, 0);
        // Input matching rain prefers the rain version.
        assert_eq!(p.select(&[attr("weather", "rain")]).unwrap().payload, 1);
    }

    #[test]
    fn empty_pool_selects_nothing() {
        let p = pool(None);
        assert!(p.select(&[attr("weather", "rain")]).is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn select_ignores_non_matching_versions() {
        let mut p = pool(None);
        p.deploy(VersionMeta::new(vec![attr("weather", "rain")], 3.0), 1);
        assert!(p.select(&[attr("weather", "snow")]).is_none());
    }

    #[test]
    fn meta_canonicalizes_attribute_order() {
        let a = VersionMeta::new(vec![attr("b", "2"), attr("a", "1")], 1.0);
        let b = VersionMeta::new(vec![attr("a", "1"), attr("b", "2")], 1.0);
        assert_eq!(a.attrs, b.attrs);
    }

    #[test]
    fn zero_capacity_pool_stores_nothing_but_never_panics() {
        let mut p = pool(Some(0));
        let out = p.deploy(VersionMeta::new(vec![attr("weather", "snow")], 3.0), 1);
        // The just-deployed version is itself LRU-evicted immediately.
        assert_eq!(out.evicted, vec![out.id]);
        assert!(p.is_empty());
        assert!(p.select(&[attr("weather", "snow")]).is_none());
        // Repeated deploys keep working and keep assigning fresh ids.
        let again = p.deploy(VersionMeta::new(vec![attr("weather", "fog")], 1.0), 2);
        assert!(again.id > out.id);
        assert!(p.is_empty());
    }

    #[test]
    fn capacity_one_pool_holds_exactly_the_newest_version() {
        let mut p = pool(Some(1));
        let a = p.deploy(VersionMeta::new(vec![attr("weather", "snow")], 3.0), 1);
        assert_eq!(p.len(), 1);
        // A different cause LRU-evicts the previous sole occupant.
        let b = p.deploy(VersionMeta::new(vec![attr("weather", "fog")], 1.0), 2);
        assert_eq!(b.evicted, vec![a.id]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.versions()[0].payload, 2);
        // Selection only ever sees the survivor.
        assert!(p.select(&[attr("weather", "snow")]).is_none());
        assert_eq!(p.select(&[attr("weather", "fog")]).unwrap().payload, 2);
    }

    #[test]
    fn redeploying_identical_attrs_replaces_not_accumulates() {
        let mut p = pool(Some(4));
        let meta = || VersionMeta::new(vec![attr("weather", "snow"), attr("location", "nyc")], 2.0);
        let mut last_id = None;
        for payload in 0..5u32 {
            let out = p.deploy(meta(), payload);
            if let Some(prev) = last_id {
                assert_eq!(out.evicted, vec![prev], "same attrs must replace");
            }
            last_id = Some(out.id);
            assert_eq!(
                p.len(),
                1,
                "identical-cause redeploys must not grow the pool"
            );
        }
        assert_eq!(p.versions()[0].payload, 4, "newest payload wins");
        // The replacement also refreshes recency: a subsequent LRU squeeze
        // evicts an older *other* cause first.
        let other = p.deploy(VersionMeta::new(vec![attr("weather", "fog")], 1.0), 10);
        let mut small = pool(Some(2));
        let stale = small.deploy(VersionMeta::new(vec![attr("weather", "fog")], 1.0), 0);
        small.deploy(meta(), 1);
        small.deploy(meta(), 2); // refresh, still 2 versions
        let squeezed = small.deploy(VersionMeta::new(vec![attr("weather", "rain")], 1.0), 3);
        assert_eq!(squeezed.evicted, vec![stale.id]);
        let _ = other;
    }

    #[test]
    fn select_tie_break_is_deterministic_and_prefers_recency() {
        // Two versions with equal attribute count AND equal risk ratio:
        // the final tie-breaker is updated_at (recency), which is a total
        // order, so selection is deterministic.
        let mut p = pool(None);
        p.deploy(VersionMeta::new(vec![attr("weather", "rain")], 2.0), 1);
        p.deploy(VersionMeta::new(vec![attr("location", "nyc")], 2.0), 2);
        let input = [attr("weather", "rain"), attr("location", "nyc")];
        for _ in 0..8 {
            assert_eq!(
                p.select(&input).unwrap().payload,
                2,
                "equal score must resolve to the most recently updated version"
            );
        }
        // Refreshing the older version flips the winner — recency is live,
        // not insertion order.
        p.deploy(VersionMeta::new(vec![attr("weather", "rain")], 2.0), 3);
        assert_eq!(p.select(&input).unwrap().payload, 3);
    }
}
