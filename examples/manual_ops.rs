//! Manual mode: the ML-ops team in the loop (§3.1 "Modes of operation").
//!
//! By default Nazar runs on autopilot. This example runs the same workload
//! in manual mode: analysis raises alerts; a (simulated) operator reviews
//! each alert's evidence, approves the convincing causes and dismisses the
//! rest; only approved causes are adapted and deployed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example manual_ops
//! ```

use nazar::prelude::*;

fn main() {
    let data_config = AnimalsConfig {
        // 20+ classes keep the classifier's confidence in the MSP
        // detector's operating regime (see DESIGN.md).
        classes: 24,
        dim: 48,
        train_per_class: 60,
        devices_per_location: 4,
        ..AnimalsConfig::default()
    };
    let dataset = AnimalsDataset::generate(&data_config);
    let trained = train_base_model(
        &dataset.train,
        &dataset.val,
        ModelArch::resnet18_analog(data_config.dim, data_config.classes),
        42,
    );
    println!(
        "base model: {:.1}% validation accuracy\n",
        trained.val_accuracy * 100.0
    );

    let config = CloudConfig {
        windows: 6,
        min_samples_per_cause: 16,
        mode: OperationMode::Manual,
        ..CloudConfig::default()
    };
    let mut orchestrator =
        Orchestrator::new(trained.model, &dataset.streams, Strategy::Nazar, config);
    let result = orchestrator.run(&dataset.streams);
    println!(
        "run finished: {} windows, {} drift-log rows, {} alerts raised\n",
        result.per_window.len(),
        result.log_rows,
        orchestrator.pending_alerts().len(),
    );

    // The operator's review policy here: approve causes with risk ratio
    // above 1.5 and at least 24 samples; dismiss the rest.
    println!("operator inbox:");
    let mut approved = Vec::new();
    while let Some(alert) = orchestrator.pending_alerts().first() {
        let convincing = alert.cause.stats.risk_ratio > 1.5 && alert.sample_count >= 24;
        println!(
            "  {} -> {}",
            alert.summary(),
            if convincing { "APPROVE" } else { "dismiss" }
        );
        if convincing {
            approved.push(orchestrator.approve_alert(0).expect("alert 0 is pending"));
        } else {
            orchestrator.dismiss_alert(0).expect("alert 0 is pending");
        }
    }
    println!(
        "\napproved and deployed {} causes: {:?}",
        approved.len(),
        approved.iter().map(RankedCause::label).collect::<Vec<_>>()
    );
}
