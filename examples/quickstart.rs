//! Quickstart: train a model, stream drifting data, let Nazar adapt.
//!
//! Builds a small animal-classification workload with weather-driven drift,
//! trains a base model, and runs the full monitor → analyze → adapt →
//! deploy loop, printing what Nazar found and how accuracy evolved.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nazar::prelude::*;

fn main() {
    // 1. A workload: seven locations, a fleet of devices, 112 simulated
    //    days of inference requests with weather-driven corruption.
    let data_config = AnimalsConfig {
        classes: 12,
        dim: 48,
        train_per_class: 60,
        devices_per_location: 4,
        ..AnimalsConfig::default()
    };
    let dataset = AnimalsDataset::generate(&data_config);
    println!(
        "workload: {} training images, {} streamed inferences across {} locations",
        dataset.train.len(),
        dataset.stream_len(),
        dataset.streams.len()
    );

    // 2. Train the base model (the paper's "trained from scratch until
    //    convergence" step).
    let system = NazarSystem::train(
        &dataset.train,
        &dataset.val,
        ModelArch::resnet18_analog(data_config.dim, data_config.classes),
        42,
    )
    .with_config(CloudConfig {
        windows: 8,
        min_samples_per_cause: 24,
        ..CloudConfig::default()
    });
    println!(
        "base model validation accuracy: {:.1}%",
        system.val_accuracy() * 100.0
    );

    // 3. Run the end-to-end loop under each strategy.
    for strategy in [Strategy::Nazar, Strategy::AdaptAll, Strategy::NoAdapt] {
        let result = system.run(&dataset.streams, strategy);
        println!(
            "\n{:<10} accuracy (last 7 windows): all data {:.1}%, drifted {:.1}%",
            strategy.name(),
            result.mean_accuracy_last(7) * 100.0,
            result.mean_drifted_accuracy_last(7) * 100.0,
        );
        if strategy == Strategy::Nazar {
            for (w, causes) in result.causes_per_window.iter().enumerate() {
                if !causes.is_empty() {
                    println!("  window {}: adapted to {}", w + 1, causes.join(", "));
                }
            }
        }
    }
}
