//! The self-driving object-classification deployment (the paper's
//! Cityscapes workload, §5.1), contrasting Nazar with the adapt-all
//! baseline on drifted-data accuracy — the Fig. 8b setting.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example self_driving
//! ```

use nazar::data::CITYSCAPES_CLASSES;
use nazar::prelude::*;

fn main() {
    let data_config = CityscapesConfig {
        cities: 8,
        total_images: 10_000,
        ..CityscapesConfig::default()
    };
    let dataset = CityscapesDataset::generate(&data_config);
    println!(
        "cityscapes-like workload: {} cities, {} stream images, classes: {:?}",
        dataset.streams.len(),
        dataset.stream_len(),
        &CITYSCAPES_CLASSES[..5]
    );

    // The paper runs three architectures; smaller models suffer more on
    // mixed distributions, which is where by-cause adaptation helps most.
    for arch_name in ["resnet18", "resnet34"] {
        let arch = match arch_name {
            "resnet18" => ModelArch::resnet18_analog(data_config.dim, CITYSCAPES_CLASSES.len()),
            _ => ModelArch::resnet34_analog(data_config.dim, CITYSCAPES_CLASSES.len()),
        };
        let trained = train_base_model(&dataset.train, &dataset.val, arch, 3);
        let config = CloudConfig {
            windows: 8,
            min_samples_per_cause: 16,
            device: DeviceConfig {
                sample_rate: 0.45,
                ..DeviceConfig::default()
            },
            ..CloudConfig::default()
        };

        println!(
            "\n{arch_name}-analog (val {:.1}%):",
            trained.val_accuracy * 100.0
        );
        for strategy in [Strategy::Nazar, Strategy::AdaptAll, Strategy::NoAdapt] {
            let result = run_strategy(&trained.model, &dataset.streams, strategy, &config);
            println!(
                "  {:<10} all data {:.1}%   drifted data {:.1}%",
                strategy.name(),
                result.mean_accuracy_last(7) * 100.0,
                result.mean_drifted_accuracy_last(7) * 100.0,
            );
        }
    }
    println!(
        "\nnote: this is a demo-sized workload; at this scale nazar and adapt-all can tie. \
         The calibrated Fig. 8 experiment (`cargo run -p nazar-bench --bin fig8`) runs the \
         full-size workload where nazar wins on every architecture."
    );
}
