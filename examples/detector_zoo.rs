//! Side-by-side drift-detector comparison on one drifted batch — a compact
//! tour of the Table 1 detector implementations and their trade-offs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example detector_zoo
//! ```

use nazar::detect::{
    eval, CsiLike, DriftDetector, EnergyScore, EntropyThreshold, KsTestDetector, Mahalanobis,
    MspThreshold, Odin,
};
use nazar::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(0);

    // Train a classifier on a synthetic task.
    let space = nazar::data::ClassSpace::new(&mut rng, 48, 10, 0.7, 0.8);
    let train: LabeledSet = space.sample_balanced(&mut rng, 80).into_iter().collect();
    let val: LabeledSet = space.sample_balanced(&mut rng, 20).into_iter().collect();
    let trained = train_base_model(&train, &val, ModelArch::resnet18_analog(48, 10), 11);
    let mut model = trained.model;
    println!(
        "model validation accuracy: {:.1}%\n",
        trained.val_accuracy * 100.0
    );

    // Clean and fog-corrupted evaluation batches.
    let make = |corrupt: bool, rng: &mut SmallRng| -> Tensor {
        let rows: Vec<Vec<f32>> = (0..160)
            .map(|i| {
                let s = space.sample(rng, i % 10);
                if corrupt {
                    Corruption::Fog.apply(&s.features, Severity::DEFAULT, rng)
                } else {
                    s.features
                }
            })
            .collect();
        Tensor::stack_rows(&rows).expect("uniform rows")
    };
    let clean = make(false, &mut rng);
    let drifted = make(true, &mut rng);
    let calib_clean = make(false, &mut rng);
    let calib_drift = make(true, &mut rng);
    let (train_x, train_y) = nazar::cloud::experiment::to_matrix(&train);

    let mut detectors: Vec<Box<dyn DriftDetector>> = vec![
        Box::new(MspThreshold::default()),
        Box::new(EntropyThreshold::default()),
        Box::new(EnergyScore::calibrated(
            &mut model,
            &calib_clean,
            &calib_drift,
        )),
        Box::new(KsTestDetector::fit(&mut model, &calib_clean, 16, 0.05).expect("reference")),
        Box::new(Odin::calibrate_epsilon(
            &mut model,
            &calib_clean,
            &calib_drift,
            10.0,
            &[0.02, 0.05],
        )),
        Box::new({
            let mut m =
                Mahalanobis::fit(&mut model, &train_x, &train_y, 10).expect("training data");
            m.calibrate(&mut model, &calib_clean, &calib_drift);
            m
        }),
        Box::new(CsiLike::fit(&mut model, &train_x, 128).expect("training data")),
    ];

    println!(
        "{:<18} {:>6} {:>10} {:>8}  requirements",
        "detector", "F1", "precision", "recall"
    );
    for det in &mut detectors {
        let e = eval::evaluate_detector(det.as_mut(), &mut model, &clean, &drifted);
        let caps = det.capabilities();
        let mut needs = Vec::new();
        if caps.needs_secondary_dataset {
            needs.push("drift dataset");
        }
        if caps.needs_secondary_model {
            needs.push("aux model");
        }
        if caps.needs_backprop {
            needs.push("backprop");
        }
        if caps.needs_batching {
            needs.push("batching");
        }
        println!(
            "{:<18} {:>6.2} {:>10.2} {:>8.2}  {}",
            det.name(),
            e.f1(),
            e.precision(),
            e.recall(),
            if needs.is_empty() {
                "none (deployable on-device)".to_string()
            } else {
                needs.join(", ")
            },
        );
    }
}
