//! The geo-distributed species-identification app (the paper's Animals
//! workload, §5.1) — with a close look at what the root-cause analysis
//! produces each window.
//!
//! Demonstrates the cloud-side API at one level below [`NazarSystem`]:
//! driving the [`Orchestrator`] manually, then inspecting the drift log
//! with counting queries — the same interface the analysis itself uses.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example species_app
//! ```

use nazar::prelude::*;

fn main() {
    let data_config = AnimalsConfig {
        classes: 16,
        dim: 48,
        train_per_class: 60,
        devices_per_location: 6,
        ..AnimalsConfig::default()
    };
    let dataset = AnimalsDataset::generate(&data_config);

    let trained = train_base_model(
        &dataset.train,
        &dataset.val,
        ModelArch::resnet34_analog(data_config.dim, data_config.classes),
        7,
    );
    println!(
        "base model: {:.1}% validation accuracy",
        trained.val_accuracy * 100.0
    );

    let config = CloudConfig {
        windows: 8,
        min_samples_per_cause: 24,
        ..CloudConfig::default()
    };
    let mut orchestrator =
        Orchestrator::new(trained.model, &dataset.streams, Strategy::Nazar, config);
    let result = orchestrator.run(&dataset.streams);

    println!("\nper-window view:");
    for (w, stats) in result.per_window.iter().enumerate() {
        println!(
            "  window {}: accuracy {:.1}% (drifted {:.1}%), detector flagged {:.1}%, causes: [{}], versions on devices: {}",
            w + 1,
            stats.accuracy() * 100.0,
            stats.drifted_accuracy() * 100.0,
            stats.detection_rate() * 100.0,
            result.causes_per_window[w].join(", "),
            result.version_counts[w],
        );
    }

    // The drift log is a queryable table — ask it the same questions the
    // FIM stage asks.
    let log = orchestrator.drift_log();
    println!(
        "\ndrift log: {} rows, {} flagged as drift",
        log.num_rows(),
        log.num_drifted()
    );
    for weather in ["clear-day", "rain", "snow", "fog"] {
        let counts = log
            .count_matching(&[Attribute::new("weather", weather)], None)
            .expect("weather is in the schema");
        if counts.occurrences > 0 {
            println!(
                "  weather={weather:<9}  {} inferences, {:.1}% flagged",
                counts.occurrences,
                counts.drifted as f64 / counts.occurrences as f64 * 100.0
            );
        }
    }

    println!(
        "\nanalysis took {:?} total; adaptation {:?} (the paper's §5.8 breakdown).",
        result.analysis_time, result.adapt_time
    );
}
