//! Workspace-level umbrella crate for the Nazar reproduction.
//!
//! This crate exists to host cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`). All functionality lives in the
//! [`nazar`] facade crate and the substrate crates it re-exports.

pub use nazar;
