//! Vendored, dependency-free stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), [`Strategy`] implementations for integer/float ranges, tuples,
//! and [`collection::vec`], plus [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case index and the message, which is enough to reproduce (generation is
//! deterministic per test function).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic generation source for property tests.

    /// SplitMix64-based generator; deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator the [`crate::proptest!`] macro uses.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seeded constructor (used to diversify per test function).
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A failed property-test assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // For floats the closed upper bound has measure zero; sample
                // the half-open interval like upstream effectively does.
                self.start() + (self.end() - self.start()) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Marker for types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    pub(crate) _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    /// The uniform boolean strategy.
    pub const ANY: super::AnyStrategy<bool> = super::AnyStrategy {
        _marker: std::marker::PhantomData,
    };
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec()`]: a fixed length or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    (@items ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Diversify the stream per test function by seeding from the
            // function name, keeping each function deterministic.
            let seed = stringify!($name)
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
            let mut rng = $crate::test_runner::TestRng::from_seed(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.0f64..2.0).generate(&mut rng);
            assert!((0.0..2.0).contains(&f));
            let i = (0u8..=5).generate(&mut rng);
            assert!(i <= 5);
            let t = (0usize..3, 0usize..4, any::<bool>()).generate(&mut rng);
            assert!(t.0 < 3 && t.1 < 4);
            let xs = crate::collection::vec(0usize..6, 2..80).generate(&mut rng);
            assert!((2..80).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 6));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: multiple args, trailing comma, doc comments.
        #[test]
        fn macro_accepts_the_full_grammar(
            seed in 0u64..100,
            level in 0u8..=5,
        ) {
            prop_assert!(seed < 100);
            prop_assert!(level <= 5, "level {} out of range", level);
            prop_assert_eq!(seed, seed);
            prop_assert_ne!(seed + 1, seed);
        }

        #[test]
        fn vec_strategy_in_macro(rows in crate::collection::vec((0usize..3, any::<bool>()), 5..20)) {
            prop_assert!(rows.len() >= 5 && rows.len() < 20);
            for (a, _b) in rows {
                prop_assert!(a < 3);
            }
        }
    }
}
