//! Derive macros for the vendored `serde` crate.
//!
//! The offline build cannot pull `syn`/`quote`, so this crate parses the
//! item's `TokenStream` directly and emits the impl as a formatted string.
//! Supported shapes are exactly what the workspace uses: named structs
//! (optionally generic over type parameters), tuple structs (newtypes are
//! transparent), and enums with unit / tuple / struct variants. Recognized
//! attributes: `#[serde(default)]` and `#[serde(skip)]` on fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone, Copy)]
struct FieldAttrs {
    default: bool,
    skip: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

fn is_punct(t: &TokenTree, ch: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == ch)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Consumes any `#[...]` attributes at `*i`, folding in `#[serde(...)]`
/// flags.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        let TokenTree::Group(g) = &tokens[*i] else {
            panic!("serde derive: expected [...] after #");
        };
        assert_eq!(
            g.delimiter(),
            Delimiter::Bracket,
            "serde derive: malformed attribute"
        );
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if inner.first().and_then(ident_of).as_deref() == Some("serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                for t in args.stream() {
                    match ident_of(&t).as_deref() {
                        Some("default") => attrs.default = true,
                        Some("skip") => attrs.skip = true,
                        Some(other) => {
                            panic!("serde derive: unsupported serde attribute `{other}`")
                        }
                        None => {}
                    }
                }
            }
        }
        *i += 1;
    }
    attrs
}

/// Consumes `pub` / `pub(...)` at `*i` if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && ident_of(&tokens[*i]).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Parses `<A, B, ...>` at `*i`, returning the type-parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if *i >= tokens.len() || !is_punct(&tokens[*i], '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut in_bound = false;
    while *i < tokens.len() && depth > 0 {
        let t = &tokens[*i];
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if depth == 1 && is_punct(t, ':') {
            in_bound = true;
        } else if depth == 1 && is_punct(t, ',') {
            in_bound = false;
        } else if depth == 1 && !in_bound {
            if let Some(name) = ident_of(t) {
                params.push(name);
            }
        }
        *i += 1;
    }
    params
}

/// Skips one type expression: everything until a comma at angle-depth 0.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    while *i < tokens.len() {
        let t = &tokens[*i];
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && is_punct(t, ',') {
            *i += 1;
            return;
        }
        *i += 1;
    }
}

/// Parses `name: Type, ...` fields of a brace-delimited body.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = ident_of(&tokens[i])
            .unwrap_or_else(|| panic!("serde derive: expected field name, got {:?}", tokens[i]));
        i += 1;
        assert!(
            is_punct(&tokens[i], ':'),
            "serde derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the fields of a paren-delimited (tuple) body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        let name = ident_of(&tokens[i])
            .unwrap_or_else(|| panic!("serde derive: expected variant name, got {:?}", tokens[i]));
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    take_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = ident_of(&tokens[i]).expect("serde derive: expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&tokens[i]).expect("serde derive: expected item name");
    i += 1;
    let generics = parse_generics(&tokens, &mut i);
    let body = match (&kw[..], tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", _) => Body::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_variants(g.stream()))
        }
        _ => panic!("serde derive: only structs and enums are supported"),
    };
    Item {
        name,
        generics,
        body,
    }
}

/// `(impl-generics, type-generics)` strings, e.g. `("<P: serde::Serialize>", "<P>")`.
fn generics_for(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let bounds: Vec<String> = item
        .generics
        .iter()
        .map(|g| format!("{g}: {bound}"))
        .collect();
    (
        format!("<{}>", bounds.join(", ")),
        format!("<{}>", item.generics.join(", ")),
    )
}

fn ser_named_fields(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.attrs.skip)
        .map(|f| {
            format!(
                "(\"{n}\".to_string(), serde::Serialize::to_value({a}))",
                n = f.name,
                a = accessor(&f.name)
            )
        })
        .collect();
    format!("serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn de_named_fields(fields: &[Field], entries_var: &str, ty_label: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let n = &f.name;
            if f.attrs.skip {
                format!("{n}: ::std::default::Default::default(),")
            } else if f.attrs.default {
                format!(
                    "{n}: match serde::value_get({entries_var}, \"{n}\") {{ \
                     ::std::option::Option::Some(fv) => serde::Deserialize::from_value(fv)?, \
                     ::std::option::Option::None => ::std::default::Default::default() }},"
                )
            } else {
                format!(
                    "{n}: match serde::value_get({entries_var}, \"{n}\") {{ \
                     ::std::option::Option::Some(fv) => serde::Deserialize::from_value(fv)?, \
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                     serde::DeError::missing_field(\"{n}\", \"{ty_label}\")) }},"
                )
            }
        })
        .collect::<Vec<_>>()
        .join("\n            ")
}

fn gen_serialize(item: &Item) -> String {
    let (ig, tg) = generics_for(item, "serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => ser_named_fields(fields, |f| format!("&self.{f}")),
        Body::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Map(::std::vec![(\
                             \"{vn}\".to_string(), serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({b}) => serde::Value::Map(::std::vec![(\
                                 \"{vn}\".to_string(), serde::Value::Seq(::std::vec![{i}]))]),",
                                b = binds.join(", "),
                                i = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.attrs.skip {
                                        format!("{}: _", f.name)
                                    } else {
                                        f.name.clone()
                                    }
                                })
                                .collect();
                            let payload = ser_named_fields(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {b} }} => serde::Value::Map(::std::vec![(\
                                 \"{vn}\".to_string(), {payload})]),",
                                b = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match self {{\n            {}\n        }}",
                arms.join("\n            ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{ig} serde::Serialize for {name}{tg} {{\n    \
             fn to_value(&self) -> serde::Value {{\n        \
                 {body}\n    \
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (ig, tg) = generics_for(item, "serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let assigns = de_named_fields(fields, "entries", name);
            format!(
                "let entries = v.as_map().ok_or_else(|| \
                 serde::DeError::type_mismatch(\"map for {name}\", v))?;\n        \
                 ::std::result::Result::Ok({name} {{\n            {assigns}\n        }})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_seq().ok_or_else(|| \
                 serde::DeError::type_mismatch(\"sequence for {name}\", v))?;\n        \
                 if items.len() != {n} {{\n            \
                 return ::std::result::Result::Err(serde::DeError::custom(\
                 \"wrong tuple arity for {name}\"));\n        }}\n        \
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{ig} serde::Deserialize for {name}{tg} {{\n    \
             fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n        \
                 {body}\n    \
             }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .collect();
    let data: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .collect();

    let str_arm = if unit.is_empty() {
        format!(
            "serde::Value::Str(tag) => ::std::result::Result::Err(\
             serde::DeError::unknown_variant(tag, \"{name}\")),"
        )
    } else {
        let chain: Vec<String> = unit
            .iter()
            .map(|v| {
                format!(
                    "if tag.as_str() == \"{vn}\" {{ ::std::result::Result::Ok({name}::{vn}) }}",
                    vn = v.name
                )
            })
            .collect();
        format!(
            "serde::Value::Str(tag) => {{\n                {} else {{ \
             ::std::result::Result::Err(serde::DeError::unknown_variant(tag, \"{name}\")) \
             }}\n            }}",
            chain.join(" else ")
        )
    };

    let map_arm = if data.is_empty() {
        format!(
            "serde::Value::Map(entries) if entries.len() == 1 => \
             ::std::result::Result::Err(serde::DeError::unknown_variant(&entries[0].0, \"{name}\")),"
        )
    } else {
        let chain: Vec<String> = data
            .iter()
            .map(|v| {
                let vn = &v.name;
                let build = match &v.kind {
                    VariantKind::Tuple(1) => format!(
                        "{{ ::std::result::Result::Ok({name}::{vn}(\
                         serde::Deserialize::from_value(payload)?)) }}"
                    ),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        format!(
                            "{{ let items = payload.as_seq().ok_or_else(|| \
                             serde::DeError::type_mismatch(\"sequence for {name}::{vn}\", payload))?; \
                             if items.len() != {n} {{ return ::std::result::Result::Err(\
                             serde::DeError::custom(\"wrong arity for {name}::{vn}\")); }} \
                             ::std::result::Result::Ok({name}::{vn}({items})) }}",
                            items = items.join(", ")
                        )
                    }
                    VariantKind::Named(fields) => {
                        let assigns =
                            de_named_fields(fields, "fields", &format!("{name}::{vn}"));
                        format!(
                            "{{ let fields = payload.as_map().ok_or_else(|| \
                             serde::DeError::type_mismatch(\"map for {name}::{vn}\", payload))?; \
                             ::std::result::Result::Ok({name}::{vn} {{ {assigns} }}) }}"
                        )
                    }
                    VariantKind::Unit => unreachable!("unit variants handled in the Str arm"),
                };
                format!("if tag.as_str() == \"{vn}\" {build}")
            })
            .collect();
        format!(
            "serde::Value::Map(entries) if entries.len() == 1 => {{\n                \
             let (tag, payload) = &entries[0];\n                \
             {} else {{ ::std::result::Result::Err(\
             serde::DeError::unknown_variant(tag, \"{name}\")) }}\n            }}",
            chain.join(" else ")
        )
    };

    format!(
        "match v {{\n            {str_arm}\n            {map_arm}\n            \
         other => ::std::result::Result::Err(\
         serde::DeError::type_mismatch(\"enum {name}\", other)),\n        }}"
    )
}

/// Derives `serde::Serialize` (the vendored value-tree trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (the vendored value-tree trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
