//! Vendored, dependency-free stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides a
//! miniserde-style value-tree data model instead of upstream serde's
//! visitor architecture: [`Serialize`] lowers any value to a [`Value`]
//! tree, [`Deserialize`] rebuilds it from one, and `serde_json` (also
//! vendored) converts between [`Value`] and JSON text. The derive macro in
//! `serde_derive` targets these traits and honours the two attributes the
//! workspace uses, `#[serde(default)]` and `#[serde(skip)]`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree every serializable value lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (all Rust numeric types funnel through `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence (JSON array).
    Seq(Vec<Value>),
    /// An ordered key/value map (JSON object); insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks up a key in serialized-map entries (helper for derived code).
pub fn value_get<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Identity: a [`Value`] serializes to itself, so callers can build or edit
/// raw JSON trees (e.g. merging bench-report files) through the same entry
/// points as typed values — mirroring upstream `serde_json::Value`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// A required field was absent from the serialized map.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    /// An enum tag did not name any known variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{variant}` for {ty}"),
        }
    }

    /// The value had the wrong shape (e.g. a map where a number was needed).
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        let shape = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        };
        DeError {
            msg: format!("expected {expected}, got {shape}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Lowers a value to a [`Value`] tree.
pub trait Serialize {
    /// The value as a serialization tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the tree, reporting shape mismatches as [`DeError`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => {
                        let cast = *n as $t;
                        // Integer targets must round-trip exactly; float
                        // targets accept any finite (or non-finite) f64.
                        if (cast as f64 == *n) || n.is_nan() {
                            Ok(cast)
                        } else {
                            Err(DeError::custom(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(DeError::type_mismatch("number", other)),
                }
            }
        }
    )*};
}

impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("sequence", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_seq()
                    .ok_or_else(|| DeError::type_mismatch("tuple sequence", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected a {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_map().ok_or_else(|| DeError::type_mismatch("map", v))?;
        entries
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for a deterministic wire form.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_map().ok_or_else(|| DeError::type_mismatch("map", v))?;
        entries
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::Num(self.as_secs() as f64)),
            (
                "nanos".to_string(),
                Value::Num(f64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::type_mismatch("duration map", v))?;
        let secs = match value_get(entries, "secs") {
            Some(s) => u64::from_value(s)?,
            None => return Err(DeError::missing_field("secs", "Duration")),
        };
        let nanos = match value_get(entries, "nanos") {
            Some(n) => u32::from_value(n)?,
            None => return Err(DeError::missing_field("nanos", "Duration")),
        };
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f32::from_value(&1.5f32.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn integer_range_is_checked() {
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
        assert!(u8::from_value(&Value::Num(-1.0)).is_err());
        assert!(u64::from_value(&Value::Num(2.5)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));

        let t = (1usize, "x".to_string(), 2.5f64);
        assert_eq!(<(usize, String, f64)>::from_value(&t.to_value()), Ok(t));

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), (1usize, 2usize));
        assert_eq!(
            BTreeMap::<String, (usize, usize)>::from_value(&m.to_value()),
            Ok(m)
        );

        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()), Ok(None));
        assert_eq!(
            Option::<u32>::from_value(&Some(3u32).to_value()),
            Ok(Some(3))
        );
    }

    #[test]
    fn duration_round_trips() {
        let d = std::time::Duration::new(12, 345_678_901);
        assert_eq!(std::time::Duration::from_value(&d.to_value()), Ok(d));
    }
}
