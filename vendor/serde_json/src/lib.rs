//! Vendored, dependency-free stand-in for `serde_json`.
//!
//! Converts between JSON text and the vendored `serde` [`Value`] tree.
//! Entry points mirror upstream: [`to_string`], [`to_vec`], [`from_str`],
//! [`from_slice`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Deserializes a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                // Rust's f64 Display is shortest-round-trip and prints
                // integral values without a fraction, matching JSON.
                out.push_str(&n.to_string());
            } else {
                // JSON has no NaN/Infinity; upstream serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("eof in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
        assert_eq!(to_string(&-2i32).unwrap(), "-2");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("3.5e2").unwrap(), 350.0);
        assert!(!from_str::<bool>(" false ").unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(usize, usize)>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\teé".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("3x").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
