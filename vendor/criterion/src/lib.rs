//! Vendored, dependency-free stand-in for `criterion`.
//!
//! Implements the measurement loop the workspace benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros — and reports a median ns/iteration per bench.
//!
//! Results print to stdout and, when the run finishes, are written as
//! machine-readable JSON (`BENCH_tensor.json` at the workspace root by
//! default; override with `NAZAR_BENCH_OUT`). `NAZAR_BENCH_FILTER`
//! restricts which benches run (substring match), mirroring upstream's CLI
//! filter.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized bench, e.g. `BenchmarkId::from_parameter(n)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (the group name prefixes it).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// One measured bench: id plus its median time per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full bench id (`group/name`).
    pub id: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Samples taken.
    pub samples: usize,
}

/// Runs closures under a timing loop and collects [`BenchResult`]s.
pub struct Criterion {
    results: Vec<BenchResult>,
    sample_size: usize,
    filter: Option<String>,
    finalized: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            sample_size: 20,
            filter: std::env::var("NAZAR_BENCH_FILTER").ok(),
            finalized: false,
        }
    }
}

impl Criterion {
    /// Measures `f` under the id `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.to_string(), self.sample_size, f);
        self
    }

    /// Starts a named group; benches inside it are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the JSON report. Called by `criterion_main!`; safe to call
    /// multiple times (subsequent calls rewrite the file).
    pub fn finalize(&mut self) {
        self.finalized = true;
        let path = std::env::var("NAZAR_BENCH_OUT").unwrap_or_else(|_| {
            // vendor/criterion/../../ is the workspace root in this repo.
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tensor.json").to_string()
        });
        let mut json = String::from("{\n  \"benches\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"samples\": {}}}{}",
                r.id.replace('"', "'"),
                r.median_ns,
                r.samples,
                comma
            );
        }
        json.push_str("  ]\n}\n");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("bench report written to {path}"),
            Err(e) => eprintln!("failed to write bench report {path}: {e}"),
        }
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median_ns = samples[samples.len() / 2];
        println!("bench {id:<48} median {:>12.1} ns/iter", median_ns);
        self.results.push(BenchResult {
            id,
            median_ns,
            samples: samples.len(),
        });
    }
}

/// A group of related benches sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Measures `f` under `group_name/name`.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(id, samples, f);
        self
    }

    /// Measures `f(bencher, input)` under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, samples, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to bench closures; [`Bencher::iter`] runs the timing loop.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples of batched runs.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + per-iteration estimate.
        let mut est = Duration::ZERO;
        let mut warmup_iters = 0u32;
        let warmup_start = Instant::now();
        while warmup_iters < 3 || (warmup_start.elapsed() < Duration::from_millis(20)) {
            let t = Instant::now();
            black_box(routine());
            est += t.elapsed();
            warmup_iters += 1;
            if warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter = est / warmup_iters;
        // Aim for ~2ms per sample so fast ops are measured over many
        // iterations while slow ops stay bounded.
        let batch = if per_iter.is_zero() {
            1000
        } else {
            (Duration::from_millis(2).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000)
                as u64
        };
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

/// Bundles bench functions into one runner function taking `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main`, running every group then writing the JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc = acc.wrapping_add(black_box(1));
                acc
            })
        });
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns > 0.0);
    }

    #[test]
    fn groups_prefix_ids_and_honor_sample_size() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(5);
            g.bench_function("one", |b| b.iter(|| black_box(2 + 2)));
            g.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, n| {
                b.iter(|| black_box(n * 2))
            });
            g.finish();
        }
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["grp/one", "grp/64"]);
        assert!(c.results().iter().all(|r| r.samples == 5));
    }
}
