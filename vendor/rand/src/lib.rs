//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the narrow slice of the `rand` 0.8 API the Nazar reproduction
//! actually uses:
//!
//! * [`Rng::gen_range`] over integer and float ranges (exclusive and
//!   inclusive),
//! * [`Rng::gen_bool`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::SmallRng`] (xoshiro256++, the same family real `rand` uses on
//!   64-bit targets),
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams differ numerically from upstream `rand`, which is acceptable:
//! every consumer in this workspace treats the generator as an arbitrary
//! deterministic PRNG seeded via `seed_from_u64`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// `u64` bits to a uniform `f64` in `[0, 1)` (53 mantissa bits).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `u32` bits to a uniform `f32` in `[0, 1)` (24 mantissa bits).
fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform-range sampler ([`Rng::gen_range`] element types).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Multiply-shift reduction of a uniform `u64` onto `[0, span)`.
fn reduce(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    // Inclusive range covering the whole u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let span = if inclusive { span + 1 } else { span };
                let r = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        lo + (hi - lo) * unit_f32(rng.next_u32())
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand a `u64` seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let equal = (0..100).all(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000));
        assert!(!equal, "different seeds should give different streams");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..4.5);
            assert!((-2.0..4.5).contains(&f));
            let i = rng.gen_range(0u8..=5);
            assert!(i <= 5);
            let s = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let trues = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = trues as f64 / f64::from(n);
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen_range(0.0f32..1.0)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let v = takes_dyn(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
